"""Minimal HTTP client for the long-lived simulation server.

The server (``repro serve``, :mod:`repro.serving.server`) speaks plain
JSON over plain HTTP, so the whole client fits in the standard library's
``urllib``.  This example starts no server itself — run one first — then
discovers the bundled machines, runs a single simulation, and fans out a
small batch, printing the aggregate throughput numbers the server
reports.  The full wire format is documented in ``docs/api-reference.md``.

Run with:  python -m repro serve                        # terminal 1
           python examples/http_client.py               # terminal 2
           python examples/http_client.py --url http://127.0.0.1:8437 \
               --machine gcd --runs 16 --cycles 16      # explicit form
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
import urllib.error
import urllib.request

#: How many times an overloaded-server rejection (429) is retried before
#: giving up; other errors never retry.
MAX_RETRIES = 5


def call(url: str, path: str, body: dict | None = None) -> dict:
    """One request against the server; structured errors become SystemExit.

    A 429 (the admission gate shedding load) is retried with capped
    exponential backoff plus jitter, honoring the server's ``Retry-After``
    hint as the floor — the polite client the backpressure design
    assumes.  Everything else fails fast: a 4xx will not get better by
    asking again.
    """
    request = urllib.request.Request(
        url.rstrip("/") + path,
        data=None if body is None else json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    for attempt in range(MAX_RETRIES + 1):
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            error = json.loads(exc.read()).get("error", {})
            if exc.code == 429 and attempt < MAX_RETRIES:
                retry_after = float(exc.headers.get("Retry-After") or 1.0)
                backoff = min(30.0, 0.5 * (2 ** attempt))
                pause = max(retry_after, backoff) * random.uniform(1.0, 1.5)
                print(f"server overloaded, retrying {path} in "
                      f"{pause:.1f}s ({attempt + 1}/{MAX_RETRIES})",
                      file=sys.stderr)
                time.sleep(pause)
                continue
            sys.exit(f"{path} failed ({exc.code}): "
                     f"{error.get('type')}: {error.get('message')}")
        except urllib.error.URLError as exc:
            sys.exit(f"cannot reach {url}: {exc.reason} "
                     "(is 'repro serve' running?)")
    raise AssertionError("unreachable")  # loop always returns or exits


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--url", default="http://127.0.0.1:8437",
                        help="server base URL (default: %(default)s)")
    parser.add_argument("--machine", default="counter",
                        help="bundled machine to simulate (default: counter)")
    parser.add_argument("--backend", default="threaded",
                        help="simulation backend (default: threaded)")
    parser.add_argument("--runs", type=int, default=8,
                        help="runs in the batch (default: 8)")
    parser.add_argument("--cycles", type=int, default=None,
                        help="cycles per run (default: the machine's)")
    args = parser.parse_args()

    health = call(args.url, "/healthz")
    print(f"server ok: version {health['version']}, "
          f"up {health['uptime_seconds']:.1f}s")

    machines = call(args.url, "/v1/machines")["machines"]
    print(f"{len(machines)} machines served: "
          + ", ".join(entry["name"] for entry in machines))

    single = call(args.url, "/v1/run", {
        "machine": args.machine, "backend": args.backend,
        "cycles": args.cycles,
    })
    result = single["result"]
    outputs = [event["value"] for event in result["outputs"]]
    print(f"single run: {result['cycles_run']} cycles on "
          f"{result['backend']}, outputs {outputs[:8]}"
          + (" ..." if len(outputs) > 8 else ""))

    batch = call(args.url, "/v1/batch", {
        "machine": args.machine, "backend": args.backend,
        "runs": [{"cycles": args.cycles, "tag": f"run-{index}"}
                 for index in range(args.runs)],
    })
    print(f"batch: {len(batch['items'])} runs ok={batch['ok']} on "
          f"{batch['pool_size']} {batch['executor']} workers, "
          f"{batch['runs_per_second']:.1f} runs/sec "
          f"(mean queue wait {batch['queue_seconds_mean'] * 1e3:.1f} ms)")
    for worker, count in sorted(batch["runs_by_worker"].items()):
        print(f"  {worker}: {count} runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
