"""Design verification by fault injection (Section 2.3.2 of the paper).

"One way to [verify a design] is by fault injection, the process of
inserting a fault in the specification to cause errors (by design) in the
simulation run."  This example injects stuck-at faults into every control
component of the GCD engine and of the stack machine, and reports which
faults are detectable at the machine's outputs — exactly the experiment an
engineer would run to judge the observability of a design.

Run with:  python examples/fault_injection.py
"""

from repro import Simulator
from repro.analysis import (
    TransientFault,
    fault_detection_experiment,
    inject_stuck_at,
    transient_override,
)
from repro.machines import (
    build_gcd_spec,
    build_stack_machine_spec,
    cycles_to_converge,
    prepare_sieve_workload,
)


def gcd_demo() -> None:
    a, b = 252, 105
    spec = build_gcd_spec(a, b)
    cycles = cycles_to_converge(a, b)
    good = Simulator(spec).run(cycles=cycles)
    print(f"GCD engine: gcd({a}, {b}) = {good.value('a')}")

    faulty = inject_stuck_at(spec, "anext", 0)
    bad = Simulator(faulty).run(cycles=cycles)
    print(f"  with 'anext' stuck at 0 the machine converges to {bad.value('a')} "
          "(fault visible in the result)")

    # a transient single-bit upset (override hooks run on every backend)
    override = transient_override(
        [TransientFault(name="bsub", bit=0, first_cycle=2, last_cycle=2)]
    )
    upset = Simulator(spec, backend="interpreter").run(cycles=cycles,
                                                       override=override)
    print(f"  a one-cycle bit flip in 'bsub' leaves gcd = {upset.value('a')} "
          f"({'undetected' if upset.value('a') == good.value('a') else 'detected'})")
    print()


def stack_machine_demo() -> None:
    workload = prepare_sieve_workload(6)
    spec = build_stack_machine_spec(workload.program)
    control_points = ["pcnext", "tosnext", "spnext", "alufn", "stackop2"]
    print("Stack machine: stuck-at-0 faults on the control selectors")
    detections = fault_detection_experiment(
        spec, components=control_points, cycles=workload.cycles_needed
    )
    for detection in detections:
        status = "DETECTED " if detection.detected else "undetected"
        print(f"  {detection.component:<10s} {status} "
              f"(good output length {len(detection.good_outputs)}, "
              f"faulty output length {len(detection.faulty_outputs)})")
    detected = sum(1 for d in detections if d.detected)
    print(f"{detected}/{len(detections)} injected faults were observable at the "
          "output port.")


if __name__ == "__main__":
    gcd_demo()
    stack_machine_demo()
