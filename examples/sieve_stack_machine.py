"""The paper's headline workload: a stack machine running the Sieve of
Eratosthenes (Appendix D / Figure 5.1).

The script assembles the sieve for the bundled stack machine ISA, builds the
microcoded RTL stack machine around it, runs it on both backends, checks the
primes against an independent reference, and reproduces the Figure 5.1
timing comparison on this host.

Run with:  python examples/sieve_stack_machine.py [sieve-size]
"""

import sys
import time

from repro import Simulator
from repro.compiler import CodegenOptions
from repro.compiler.compiled import CompiledBackend
from repro.interp.interpreter import InterpreterBackend
from repro.machines import build_stack_machine, expected_primes, prepare_sieve_workload


def main(size: int = 20) -> None:
    # --- prepare the workload ----------------------------------------------------
    workload = prepare_sieve_workload(size)
    machine = build_stack_machine(workload.program)
    cycles = workload.cycles_needed
    print(f"Sieve size {size}: {len(workload.program)} instructions of program,")
    print(f"{workload.instructions_executed} instructions executed, "
          f"{cycles} machine cycles at 4 cycles/instruction.")
    print("Machine:", machine.spec.summary())
    print()

    # --- run on the compiled backend and check the primes -------------------------
    result = Simulator(machine.spec, backend="compiled").run(cycles=cycles)
    primes, count = result.output_integers()[:-1], result.output_integers()[-1]
    print("Primes produced by the simulated hardware:", primes)
    print("Prime count reported by the program:", count)
    assert primes == expected_primes(size), "simulated primes disagree with reference!"
    print("Reference check passed.")
    print()

    # --- Figure 5.1: interpreter vs compiler timing --------------------------------
    print("Figure 5.1 style timing comparison on this host (seconds):")
    start = time.perf_counter()
    interpreter = InterpreterBackend().prepare(machine.spec)
    tables_seconds = time.perf_counter() - start
    start = time.perf_counter()
    interpreter.run(cycles=cycles, trace=False, collect_stats=False)
    interp_seconds = time.perf_counter() - start

    compiled = CompiledBackend(CodegenOptions.fastest()).prepare(machine.spec)
    start = time.perf_counter()
    compiled.run(cycles=cycles, trace=False, collect_stats=False)
    compiled_seconds = time.perf_counter() - start

    print(f"  ASIM    generate tables {tables_seconds:10.4f}")
    print(f"  ASIM    simulation      {interp_seconds:10.4f}")
    print(f"  ASIM II generate code   {compiled.generate_seconds:10.4f}")
    print(f"  ASIM II compile         {compiled.compile_seconds:10.4f}")
    print(f"  ASIM II simulation      {compiled_seconds:10.4f}")
    print(f"  simulation speedup: {interp_seconds / compiled_seconds:.1f}x "
          "(the paper reports roughly 20x)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20)
