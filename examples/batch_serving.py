"""Batch/parallel serving: one prepared machine, many concurrent runs.

This example demonstrates the serving layer (:mod:`repro.serving`) on the
bundled counter machine: a :class:`~repro.serving.pool.SimulationPool`
pays the prepare phase once, fans a batch of run variants out over worker
threads, and the asyncio front-end drives the same pool from async code.
It also shows the serving wins the ``BENCH_batch.json`` benchmark
measures — the pooled batch against the naive prepare-per-request loop,
and the process executor (``executor="process"``) that ships the lowered
program to worker processes once and scales with CPU cores.

Run with:  python examples/batch_serving.py
"""

import asyncio
import time

from repro import BatchRequest, RunRequest, SimulationPool, run_batch
from repro.compiler.threaded import ThreadedBackend
from repro.machines import (
    build_counter_spec,
    build_stack_machine_spec,
    prepare_sieve_workload,
)


def batch_demo() -> None:
    spec = build_counter_spec(width_bits=4)

    # --- a heterogeneous batch: five different cycle counts ----------------------
    runs = [RunRequest(cycles=cycles, tag=f"{cycles} cycles")
            for cycles in (5, 10, 20, 40, 80)]
    with SimulationPool(spec, backend="threaded", max_workers=4) as pool:
        batch = pool.run_batch(runs)
    print(batch.summary())
    for item in batch.items:
        print(f"  {item.tag:>10s}: count={item.result.value('count'):2d} "
              f"({item.seconds * 1e3:.2f} ms on its worker)")
    print()


def throughput_demo() -> None:
    # the sieve stack machine has a real preparation phase (~50 components),
    # so many small requests show the serving win clearly
    workload = prepare_sieve_workload(6)
    spec = build_stack_machine_spec(workload.program)
    request = BatchRequest.repeat(spec, 20, cycles=256, backend="threaded",
                                  collect_stats=False)

    # naive serve loop: fresh (uncached) prepare for every request
    start = time.perf_counter()
    for _ in range(len(request)):
        ThreadedBackend(cache=False).run(spec, cycles=256, collect_stats=False)
    naive = len(request) / (time.perf_counter() - start)

    # the serving layer: one warm prepare, pooled fan-out
    batch = run_batch(request, max_workers=4)
    print(f"naive prepare-per-request loop: {naive:8.1f} runs/sec")
    print(f"pooled batch (shared artifact): {batch.runs_per_second:8.1f} "
          f"runs/sec")
    print()


def process_pool_demo() -> None:
    # true multi-core serving: the lowered program ships to worker
    # processes once at pool startup; on a multi-core host the CPU-bound
    # batch scales with cores instead of interleaving on the GIL
    workload = prepare_sieve_workload(6)
    spec = build_stack_machine_spec(workload.program)
    runs = [RunRequest(cycles=2048, collect_stats=False) for _ in range(16)]
    with SimulationPool(spec, backend="compiled", executor="process",
                        max_workers=2) as pool:
        batch = pool.run_batch(runs)
    print(f"process pool: {batch.summary()}")
    for worker, rate in sorted(batch.per_worker_runs_per_second.items()):
        print(f"  {worker}: {rate:.1f} runs/sec while busy")
    print()


async def async_demo() -> None:
    from repro import async_run_batch

    spec = build_counter_spec(width_bits=4)
    request = BatchRequest.repeat(spec, 8, cycles=32)
    batch = await async_run_batch(request, max_workers=4)
    print(f"async front-end: {batch.summary()}")


if __name__ == "__main__":
    batch_demo()
    throughput_demo()
    process_pool_demo()
    asyncio.run(async_demo())
