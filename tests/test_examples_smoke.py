"""Smoke test: every example module imports cleanly and is documented.

Each ``examples/*.py`` must carry a header docstring saying what it
demonstrates and the exact command to run it; importing the module must be
side-effect free (all work behind ``if __name__ == "__main__"``).
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert {path.stem for path in EXAMPLES} >= {
        "batch_serving",
        "fault_injection",
        "hardware_netlist",
        "quickstart",
        "sieve_stack_machine",
        "tiny_computer",
    }


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_without_side_effects(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.__doc__, f"{path.name} lacks a header docstring"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_docstring_states_the_run_command(path):
    source = path.read_text()
    docstring = source.split('"""')[1]
    assert "Run with:" in docstring, f"{path.name} docstring lacks 'Run with:'"
    assert f"python examples/{path.name}" in docstring, (
        f"{path.name} docstring lacks its exact run command"
    )
