"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.rtl.parser import parse_spec

#: A minimal but complete specification: a 3-bit counter with memory-mapped
#: output, used anywhere a "small real spec" is needed.
COUNTER_SPEC = """\
# three bit counter with output
count* next wrapped outport .
A next 4 count 1
A wrapped 8 next 7
M count 0 wrapped 1 1
M outport 1 count 3 2
.
"""

#: The paper's Figure 4.1 ALU examples, embedded in a minimal valid spec.
FIGURE_4_1_SPEC = """\
# figure 4.1 alu example
alu add compute left .
A alu compute left 3048
A add 4 left 3048
M compute 0 0 1 1
M left 0 1 1 1
.
"""

#: The paper's Figure 4.2 selector example, embedded in a minimal valid spec.
FIGURE_4_2_SPEC = """\
# figure 4.2 selector example
selector index value0 value1 value2 value3 .
S selector index value0 value1 value2 value3
M index 0 selector 1 1
M value0 0 0 0 -1 10
M value1 0 0 0 -1 11
M value2 0 0 0 -1 12
M value3 0 0 0 -1 13
.
"""

#: The paper's Figure 4.3 memory example (negative count = initial values).
FIGURE_4_3_SPEC = """\
# figure 4.3 memory example
memory address data operation .
M memory address data operation -4 12 34 56 78
M address 0 1 1 1
M data 0 2 1 1
M operation 0 0 1 1
.
"""


@pytest.fixture
def counter_spec_text() -> str:
    return COUNTER_SPEC


@pytest.fixture
def counter_spec():
    return parse_spec(COUNTER_SPEC)


@pytest.fixture
def figure_4_1_spec():
    return parse_spec(FIGURE_4_1_SPEC)


@pytest.fixture
def figure_4_2_spec():
    return parse_spec(FIGURE_4_2_SPEC)


@pytest.fixture
def figure_4_3_spec():
    return parse_spec(FIGURE_4_3_SPEC)
