"""Unit tests for the interpreter's machine state."""

import pytest

from repro.errors import UnknownComponentError
from repro.interp.state import MachineState
from repro.rtl.parser import parse_spec


@pytest.fixture
def state(counter_spec):
    return MachineState.initial(counter_spec)


class TestInitialState:
    def test_combinational_values_start_at_zero(self, state):
        assert state.values == {"next": 0, "wrapped": 0}

    def test_memory_outputs_start_at_zero(self, state):
        assert state.memory_outputs == {"count": 0, "outport": 0}

    def test_memory_arrays_sized(self, state):
        assert state.memory_arrays["count"] == [0]
        assert state.memory_arrays["outport"] == [0, 0]

    def test_initial_values_applied(self):
        spec = parse_spec("# t\nm .\nM m 0 0 0 -3 7 8 9\n.")
        state = MachineState.initial(spec)
        assert state.memory_arrays["m"] == [7, 8, 9]

    def test_register_initial_output(self):
        spec = parse_spec("# t\nr .\nM r 0 r 1 -1 42\n.")
        state = MachineState.initial(spec)
        assert state.memory_outputs["r"] == 42

    def test_cycle_starts_at_zero(self, state):
        assert state.cycle == 0


class TestLookup:
    def test_combinational_lookup(self, state):
        state.set_value("next", 5)
        assert state.lookup("next") == 5

    def test_memory_lookup_uses_latched_output(self, state):
        state.write_cell("count", 0, 99)
        assert state.lookup("count") == 0
        state.set_memory_output("count", 99)
        assert state.lookup("count") == 99

    def test_unknown_component_rejected(self, state):
        with pytest.raises(UnknownComponentError):
            state.lookup("ghost")

    def test_visible_values_merges_both(self, state):
        state.set_value("next", 3)
        state.set_memory_output("count", 4)
        visible = state.visible_values()
        assert visible["next"] == 3
        assert visible["count"] == 4


class TestMutation:
    def test_write_and_read_cell(self, state):
        state.write_cell("outport", 1, 17)
        assert state.read_cell("outport", 1) == 17

    def test_memory_snapshot_is_a_copy(self, state):
        snapshot = state.memory_snapshot()
        snapshot["count"][0] = 123
        assert state.read_cell("count", 0) == 0
