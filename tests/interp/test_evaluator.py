"""Unit tests for per-component evaluation rules."""

import pytest

from repro.core.iosystem import QueueIO
from repro.errors import (
    InvalidAluFunctionError,
    MemoryRangeError,
    SelectorRangeError,
)
from repro.interp.evaluator import (
    apply_memory_request,
    evaluate_alu,
    evaluate_selector,
    latch_memory_request,
)
from repro.interp.state import MachineState
from repro.rtl.parser import parse_spec

SPEC = """\
# evaluator test bench
adder sel ram reg .
A adder 4 reg 10
S sel reg.0.1 100 adder reg 7
M ram reg adder reg.0.3 8
M reg 0 adder 1 1
.
"""


@pytest.fixture
def spec():
    return parse_spec(SPEC)


@pytest.fixture
def state(spec):
    return MachineState.initial(spec)


class TestAluEvaluation:
    def test_constant_function(self, spec, state):
        state.set_memory_output("reg", 5)
        funct, value = evaluate_alu(spec.component("adder"), state)
        assert funct == 4
        assert value == 15

    def test_invalid_function_rejected(self, state):
        spec = parse_spec("# t\nx r .\nA x r 1 2\nM r 0 0 0 -1 20\n.")
        state = MachineState.initial(spec)
        state.set_memory_output("r", 20)
        with pytest.raises(InvalidAluFunctionError):
            evaluate_alu(spec.component("x"), state)


class TestSelectorEvaluation:
    def test_case_selection(self, spec, state):
        state.set_memory_output("reg", 0)
        state.set_value("adder", 55)
        index, value = evaluate_selector(spec.component("sel"), state)
        assert (index, value) == (0, 100)
        state.set_memory_output("reg", 1)
        index, value = evaluate_selector(spec.component("sel"), state)
        assert (index, value) == (1, 55)

    def test_out_of_range_rejected(self, spec, state):
        state.set_memory_output("reg", 7)   # no case 7 (only 4 cases, index 0..3)
        spec2 = parse_spec(
            "# t\nsel reg .\nS sel reg 1 2\nM reg 0 0 1 1\n."
        )
        state2 = MachineState.initial(spec2)
        state2.set_memory_output("reg", 5)
        with pytest.raises(SelectorRangeError):
            evaluate_selector(spec2.component("sel"), state2)


class TestMemoryRequests:
    def test_latch_uses_current_values(self, spec, state):
        state.set_memory_output("reg", 3)
        state.set_value("adder", 13)
        request = latch_memory_request(spec.component("ram"), state)
        assert request.address == 3
        assert request.data == 13
        assert request.operation == 3  # reg.0.3 of 3

    def test_read(self, spec, state):
        ram = spec.component("ram")
        state.memory_arrays["ram"][2] = 42
        state.set_memory_output("reg", 2)
        state.set_value("adder", 0)
        # force a read operation by zeroing reg's low bits contribution
        request = latch_memory_request(ram, state)
        request = type(request)(memory=ram, address=2, data=0, operation=0)
        effect = apply_memory_request(request, state, QueueIO())
        assert effect.new_output == 42
        assert state.lookup("ram") == 42

    def test_write(self, spec, state):
        ram = spec.component("ram")
        request = latch_memory_request(ram, state)
        request = type(request)(memory=ram, address=5, data=77, operation=1)
        effect = apply_memory_request(request, state, QueueIO())
        assert effect.wrote_cell
        assert state.read_cell("ram", 5) == 77
        assert state.lookup("ram") == 77

    def test_input(self, spec, state):
        ram = spec.component("ram")
        io = QueueIO([123])
        request = latch_memory_request(ram, state)
        request = type(request)(memory=ram, address=1, data=0, operation=2)
        effect = apply_memory_request(request, state, io)
        assert effect.new_output == 123
        assert io.inputs_consumed == 1

    def test_output(self, spec, state):
        ram = spec.component("ram")
        io = QueueIO()
        request = latch_memory_request(ram, state)
        request = type(request)(memory=ram, address=1, data=88, operation=3)
        apply_memory_request(request, state, io)
        assert io.output_values() == [88]

    def test_address_out_of_range_rejected(self, spec, state):
        ram = spec.component("ram")
        request = latch_memory_request(ram, state)
        request = type(request)(memory=ram, address=8, data=0, operation=0)
        with pytest.raises(MemoryRangeError):
            apply_memory_request(request, state, QueueIO())

    def test_output_address_not_bounds_checked(self, spec, state):
        # memory-mapped I/O addresses are not cell indices (paper's sinput/soutput)
        ram = spec.component("ram")
        request = latch_memory_request(ram, state)
        request = type(request)(memory=ram, address=4096, data=5, operation=3)
        io = QueueIO()
        apply_memory_request(request, state, io)
        assert io.outputs[0].address == 4096

    def test_trace_flags_reported(self, spec, state):
        ram = spec.component("ram")
        request = latch_memory_request(ram, state)
        request = type(request)(memory=ram, address=0, data=9, operation=5)
        effect = apply_memory_request(request, state, QueueIO())
        assert effect.trace_write and not effect.trace_read
