"""Unit tests for the ASIM-style interpreter backend."""

import pytest

from repro.core.iosystem import QueueIO
from repro.core.trace import TraceOptions
from repro.errors import InputExhaustedError, SimulationError
from repro.interp.interpreter import InterpreterBackend
from repro.rtl.parser import parse_spec


@pytest.fixture
def backend():
    return InterpreterBackend()


class TestBasicRuns:
    def test_counter_counts(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=10)
        assert result.value("count") == 2          # 3-bit counter wraps at 8
        assert result.output_integers() == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]

    def test_zero_cycles(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=0)
        assert result.cycles_run == 0
        assert result.value("count") == 0

    def test_cycles_from_spec_declaration(self, backend):
        spec = parse_spec("# t\n= 5\nx r .\nA x 4 r 1\nM r 0 x 1 1\n.")
        result = backend.run(spec)
        assert result.cycles_run == 5

    def test_missing_cycle_count_rejected(self, backend, counter_spec):
        with pytest.raises(SimulationError):
            backend.run(counter_spec)

    def test_negative_cycdescribed_rejected(self, backend, counter_spec):
        with pytest.raises(SimulationError):
            backend.run(counter_spec, cycles=-1)

    def test_memory_contents_in_result(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=4)
        assert result.memory("count") == [4]

    def test_prepare_then_run_repeatedly(self, backend, counter_spec):
        prepared = backend.prepare(counter_spec)
        first = prepared.run(cycles=8)
        second = prepared.run(cycles=8)
        assert first.final_values == second.final_values


class TestMemoryMappedIO:
    def test_input_values_consumed(self, backend):
        spec = parse_spec(
            "# io\nacc inport .\n"
            "A acc 4 inport 0\n"
            "M inport 1 0 2 2\n"
            ".",
        )
        result = backend.run(spec, cycles=3, io=QueueIO([10, 20, 30]))
        # each cycle reads the next input; acc sees it one cycle later
        assert result.value("inport") == 30

    def test_input_exhaustion_raises(self, backend):
        spec = parse_spec("# io\ninport .\nM inport 1 0 2 2\n.")
        with pytest.raises(InputExhaustedError):
            backend.run(spec, cycles=3, io=QueueIO([1]))

    def test_plain_iterable_accepted_as_io(self, backend):
        spec = parse_spec("# io\ninport .\nM inport 1 0 2 2\n.")
        result = backend.run(spec, cycles=2, io=[5, 6])
        assert result.value("inport") == 6

    def test_output_events_tagged_with_cycle(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=3)
        assert [event.cycle for event in result.outputs] == [0, 1, 2]


class TestTracing:
    def test_trace_disabled_by_default_when_no_stars(self, backend):
        spec = parse_spec("# t\nx r .\nA x 4 r 1\nM r 0 x 1 1\n.")
        result = backend.run(spec, cycles=3)
        assert len(result.trace) == 0

    def test_star_declarations_enable_tracing(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=5)
        assert result.trace.values_of("count") == [0, 1, 2, 3, 4]

    def test_trace_false_overrides_stars(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=5, trace=False)
        assert len(result.trace) == 0

    def test_trace_options_name_override(self, backend, counter_spec):
        options = TraceOptions(trace_cycles=True, names=("next",))
        result = backend.run(counter_spec, cycles=3, trace=options)
        assert result.trace.values_of("next") == [1, 2, 3]

    def test_trace_limit(self, backend, counter_spec):
        options = TraceOptions(trace_cycles=True, limit=2)
        result = backend.run(counter_spec, cycles=10, trace=options)
        assert len(result.trace) == 2

    def test_memory_access_trace(self, backend):
        spec = parse_spec(
            "# traced writes\nr .\nM r 0 5 5 1\n.",   # operation 5 = write + trace
        )
        result = backend.run(spec, cycles=2, trace=True)
        writes = result.trace.accesses_of("r", "write")
        assert len(writes) == 2
        assert writes[0].value == 5


class TestStats:
    def test_cycle_and_evaluation_counts(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=10)
        assert result.stats.cycles == 10
        assert result.stats.component_evaluations == 10 * 4

    def test_memory_access_counts(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=10)
        count_stats = result.stats.memories["count"]
        assert count_stats.writes == 10
        outport_stats = result.stats.memories["outport"]
        assert outport_stats.outputs == 10

    def test_alu_function_usage(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=4)
        assert result.stats.alu_function_usage[4] == 4   # add
        assert result.stats.alu_function_usage[8] == 4   # and

    def test_stats_can_be_disabled(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=4, collect_stats=False)
        assert result.stats.cycles == 0


class TestOverrides:
    def test_override_forces_value(self, backend, counter_spec):
        result = backend.run(
            counter_spec,
            cycles=5,
            override=lambda name, value, cycle: 0 if name == "wrapped" else value,
        )
        assert result.value("count") == 0

    def test_override_sees_cycle_numbers(self, backend, counter_spec):
        seen = []

        def override(name, value, cycle):
            if name == "next":
                seen.append(cycle)
            return value

        backend.run(counter_spec, cycles=3, override=override)
        assert seen == [0, 1, 2]
