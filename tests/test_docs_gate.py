"""Tier-1 documentation gate (wraps ``scripts/check_docs.py``).

Fails the suite when a public module under ``src/repro`` lacks a module
docstring, so documentation debt cannot accumulate silently.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_docs():
    path = REPO_ROOT / "scripts" / "check_docs.py"
    spec = importlib.util.spec_from_file_location("check_docs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_public_module_has_a_docstring():
    check_docs = _load_check_docs()
    problems = check_docs.missing_docstrings()
    assert problems == [], (
        "public modules missing a module docstring: "
        + ", ".join(str(p.relative_to(REPO_ROOT)) for p in problems)
    )


def test_gate_covers_the_serving_package():
    """The gate actually walks the tree (guards against a silent no-op)."""
    check_docs = _load_check_docs()
    serving = check_docs.SOURCE_ROOT / "serving"
    assert serving.is_dir()
    assert check_docs.is_public_module(serving / "__init__.py")
    assert not check_docs.is_public_module(serving / "_private.py")


def test_gate_detects_a_missing_docstring(tmp_path):
    check_docs = _load_check_docs()
    (tmp_path / "documented.py").write_text('"""Doc."""\n')
    (tmp_path / "bare.py").write_text("x = 1\n")
    problems = check_docs.missing_docstrings(tmp_path)
    assert [p.name for p in problems] == ["bare.py"]


def test_gate_requires_the_serving_server_modules():
    """The HTTP serving surface (server.py, protocol.py) must exist and be
    covered: its wire format is documented in docs/api-reference.md."""
    check_docs = _load_check_docs()
    assert "serving/server.py" in check_docs.REQUIRED_MODULES
    assert "serving/protocol.py" in check_docs.REQUIRED_MODULES
    assert check_docs.missing_required_modules() == []


def test_gate_detects_a_missing_required_module(tmp_path):
    check_docs = _load_check_docs()
    (tmp_path / "serving").mkdir()
    (tmp_path / "serving" / "server.py").write_text('"""Doc."""\n')
    absent = check_docs.missing_required_modules(tmp_path)
    assert "serving/protocol.py" in absent
    assert "serving/server.py" not in absent
