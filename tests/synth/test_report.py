"""Tests for the bill of materials and the Appendix-F fidelity check."""

from repro.machines import prepare_division_workload
from repro.machines.tiny_computer import build_tiny_computer_spec
from repro.synth.parts import APPENDIX_F_PART_NAMES, CATALOG
from repro.synth.report import bill_of_materials, hardware_report


class TestCatalog:
    def test_appendix_f_parts_all_in_catalog(self):
        for name in APPENDIX_F_PART_NAMES:
            assert name in CATALOG

    def test_catalog_entries_have_positive_capacity(self):
        for part in CATALOG.values():
            assert part.bits_per_package > 0
            assert part.inputs_per_package > 0


class TestBillOfMaterials:
    def test_counter_bom(self, counter_spec):
        bom = bill_of_materials(counter_spec)
        assert bom.total_packages > 0
        counts = bom.part_counts
        assert "4 bit adder" in counts          # the increment ALU
        assert "hex D flip flop" in counts      # the count register

    def test_parts_for_component(self, counter_spec):
        bom = bill_of_materials(counter_spec)
        assert all(use.component == "next" for use in bom.parts_for("next"))

    def test_render_lists_every_part(self, counter_spec):
        text = bill_of_materials(counter_spec).render()
        assert "total packages" in text
        for part in bill_of_materials(counter_spec).part_names:
            assert part in text


class TestTinyComputerFidelity:
    """Section 5.3 / Appendix F: the tiny computer maps onto the same part
    vocabulary the thesis lists for its hand-drawn circuit."""

    def spec(self):
        return build_tiny_computer_spec(prepare_division_workload(60, 7).program)

    def test_parts_drawn_from_appendix_f_vocabulary(self):
        bom = bill_of_materials(self.spec())
        allowed = set(APPENDIX_F_PART_NAMES) | {"quad OR", "quad XOR", "hex inverter"}
        assert bom.part_names <= allowed

    def test_uses_ram_flip_flops_mux_adder_and_comparator(self):
        bom = bill_of_materials(self.spec())
        assert "2K x 8 bit RAM" in bom.part_names       # the 128-word memory
        assert "hex D flip flop" in bom.part_names      # pc / ac / ir registers
        assert "4 bit adder" in bom.part_names          # pc increment / subtract
        assert "4 bit comparator" in bom.part_names     # output-address compare
        assert any("multiplexor" in name for name in bom.part_names)

    def test_hardware_report_combines_netlist_and_bom(self):
        report = hardware_report(self.spec())
        text = report.render()
        assert "bill of materials" in text
        assert "wiring list" in text
        assert set(report.widths) == set(self.spec().component_names())
        assert len(report.netlist.wires) > 30
