"""Tests for component-to-part mapping."""

import pytest

from repro.errors import SynthesisError
from repro.rtl.parser import parse_spec
from repro.synth.mapper import PartUse, map_component, map_specification
from repro.synth.netlist import infer_widths


def parts_for(source, name):
    spec = parse_spec(source, validate=False)
    widths = infer_widths(spec)
    return map_component(spec.component(name), widths[name])


class TestAluMapping:
    def test_constant_and_becomes_gates(self):
        # the consumer only reads 4 bits of x, so one quad AND package suffices
        uses = parts_for("# t\nx r .\nA x 8 r.0.3 15\nM r 0 x.0.3 1 1\n.", "x")
        assert uses[0].part == "quad AND"
        assert uses[0].quantity == 1

    def test_wide_consumer_forces_more_gate_packages(self):
        uses = parts_for("# t\nx r .\nA x 8 r.0.3 15\nM r 0 x 1 1\n.", "x")
        assert uses[0].part == "quad AND"
        assert uses[0].quantity == 8   # conservatively sized for a 31-bit bus

    def test_add_becomes_adders(self):
        uses = parts_for("# t\nx r .\nA x 4 r 1\nM r 0 x 1 1\n.", "x")
        assert uses[0].part == "4 bit adder"
        assert uses[0].quantity == 8   # 31 bits / 4 per package

    def test_comparison_becomes_comparators(self):
        uses = parts_for("# t\nx r .\nA x 13 r.0.7 9\nM r 0 x 1 1\n.", "x")
        assert uses[0].part == "4 bit comparator"

    def test_dynamic_function_becomes_generic_alu(self):
        uses = parts_for("# t\nx f r .\nA x f r 1\nM r 0 x 1 1\nM f 0 0 0 1\n.", "x")
        assert uses[0].part == "4 bit alu"

    def test_wire_function_needs_no_parts(self):
        uses = parts_for("# t\nx r .\nA x 2 r 0\nM r 0 x 1 1\n.", "x")
        assert uses == []


class TestSelectorMapping:
    def test_two_way_selector(self):
        uses = parts_for("# t\ns r .\nS s r.0 1 2\nM r 0 s 1 1\n.", "s")
        assert uses[0].part == "quad 2 to 1 multiplexor"

    def test_four_way_selector(self):
        uses = parts_for("# t\ns r .\nS s r.0.1 1 2 3 4\nM r 0 s 1 1\n.", "s")
        assert uses[0].part == "dual 4 to 1 multiplexor"

    def test_wide_selector_cascades(self):
        cases = " ".join(str(i) for i in range(18))
        uses = parts_for(f"# t\ns r .\nS s r.0.4 {cases}\nM r 0 s 1 1\n.", "s")
        assert uses[0].part == "8 to 1 multiplexor"
        assert uses[0].quantity >= 3   # 18 inputs need a cascaded tree

    def test_single_case_selector_is_wiring(self):
        uses = parts_for("# t\ns r .\nS s r.0 7\nM r 0 s 1 1\n.", "s")
        assert uses == []


class TestMemoryMapping:
    def test_narrow_register_uses_small_flip_flops(self):
        uses = parts_for("# t\nr x .\nA x 2 r.0.1 0\nM r 0 x 1 1\n.", "r")
        assert uses[0].part == "dual D flip flop"

    def test_wide_register_uses_hex_flip_flops(self):
        uses = parts_for("# t\nr x .\nA x 2 r 0\nM r 0 x 1 1\n.", "r")
        assert uses[0].part == "hex D flip flop"
        assert uses[0].quantity == 6   # ceil(31 / 6)

    def test_ram_uses_ram_packages(self):
        uses = parts_for("# t\nm r .\nM m r.0.6 r 0 128\nM r 0 1 1 1\n.", "m")
        assert uses[0].part == "2K x 8 bit RAM"

    def test_large_ram_needs_multiple_packages(self):
        uses = parts_for("# t\nm r .\nM m r.0.11 r 0 4096\nM r 0 1 1 1\n.", "m")
        ram = uses[0]
        assert ram.part == "2K x 8 bit RAM"
        assert ram.quantity == 8   # 4096 cells x 31 bits / 16384 bits per chip


class TestSpecificationMapping:
    def test_every_component_considered(self, counter_spec):
        uses = map_specification(counter_spec)
        components = {use.component for use in uses}
        assert "next" in components
        assert "count" in components

    def test_part_use_validation(self):
        with pytest.raises(SynthesisError):
            PartUse("x", "warp drive", 1)
        with pytest.raises(SynthesisError):
            PartUse("x", "4 bit alu", 0)
