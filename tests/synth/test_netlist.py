"""Tests for netlist extraction and width inference."""

from repro.machines import build_stack_machine_spec, sieve_program
from repro.rtl.bits import WORD_BITS
from repro.rtl.parser import parse_spec
from repro.synth.netlist import Wire, extract_netlist, infer_widths


class TestWires:
    def test_wire_rendering(self):
        full = Wire("alu", "reg", "data", 0, WORD_BITS - 1)
        single = Wire("ir", "decode", "select", 7, 7)
        ranged = Wire("ir", "decode", "select", 0, 6)
        assert full.render() == "alu -> reg.data"
        assert single.render() == "ir.7 -> decode.select"
        assert ranged.render() == "ir.0.6 -> decode.select"
        assert ranged.width == 7


class TestExtraction:
    def test_counter_netlist(self, counter_spec):
        netlist = extract_netlist(counter_spec)
        assert len(netlist.blocks) == 4
        destinations = {(w.source, w.destination, w.port) for w in netlist.wires}
        assert ("count", "next", "left") in destinations
        assert ("next", "wrapped", "left") in destinations
        assert ("wrapped", "count", "data") in destinations
        assert ("count", "outport", "data") in destinations

    def test_fanout(self, counter_spec):
        netlist = extract_netlist(counter_spec)
        assert netlist.fanout("count") == 2      # next and outport read it
        assert netlist.fanout("outport") == 0

    def test_wires_into_and_out_of(self, counter_spec):
        netlist = extract_netlist(counter_spec)
        assert {w.source for w in netlist.wires_into("count")} == {"wrapped"}
        assert {w.destination for w in netlist.wires_out_of("next")} == {"wrapped"}

    def test_bit_fields_recorded(self):
        spec = parse_spec("# t\nd r .\nA d 2 r.7.9 0\nM r 0 d 1 1\n.")
        netlist = extract_netlist(spec)
        wire = netlist.wires_into("d")[0]
        assert (wire.low_bit, wire.high_bit) == (7, 9)

    def test_wiring_list_renders_every_block(self, counter_spec):
        text = extract_netlist(counter_spec).render_wiring_list()
        for name in counter_spec.component_names():
            assert name in text

    def test_selector_cases_produce_wires(self, figure_4_2_spec):
        netlist = extract_netlist(figure_4_2_spec)
        ports = {w.port for w in netlist.wires_into("selector")}
        assert "select" in ports
        assert "case0" in ports and "case3" in ports


class TestWidthInference:
    def test_whole_reference_gets_full_word(self, counter_spec):
        widths = infer_widths(counter_spec)
        assert widths["count"] == WORD_BITS

    def test_bit_field_reference_narrows(self):
        spec = parse_spec("# t\nd r .\nA d 2 r.0.9 0\nM r 0 d 1 1\n.")
        widths = infer_widths(spec)
        assert widths["r"] == 10

    def test_unreferenced_component_defaults_to_word(self, counter_spec):
        widths = infer_widths(counter_spec)
        assert widths["outport"] == WORD_BITS

    def test_narrowing_requires_every_consumer_to_use_fields(self):
        # "ir" is read through bit fields by the decoders but held whole by its
        # own hold path, so the inference stays conservative at the full word.
        spec = build_stack_machine_spec(sieve_program(3))
        widths = infer_widths(spec)
        assert widths["ir"] == WORD_BITS
        assert widths["phase"] <= WORD_BITS

    def test_narrowing_applies_when_all_consumers_use_fields(self):
        spec = parse_spec(
            "# t\nhi lo r .\nA hi 2 r.8.15 0\nA lo 2 r.0.7 0\nM r 0 hi 1 1\n.",
        )
        assert infer_widths(spec)["r"] == 16
