"""Replay of the committed fuzz corpus, plus the case-document format.

Every ``tests/fuzz/corpus/*.json`` file is a machine the generator found,
persisted with the run parameters that exercise it.  Each one is replayed
through the full differential matrix on every suite run, so a divergence
those machines once exposed (or could expose) can never silently return.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.compiler.cache import spec_fingerprint
from repro.errors import SpecFormatError
from repro.fuzz import run_differential
from repro.fuzz.corpus import (
    case_from_document,
    case_to_document,
    load_case,
    load_corpus,
    save_case,
)
from repro.fuzz.differential import ir_fingerprint
from repro.rtl.interchange import spec_from_json, spec_to_json

CORPUS_DIR = Path(__file__).parent / "corpus"

_CASES = load_corpus(CORPUS_DIR)


def test_corpus_is_committed():
    """The regression corpus must hold at least the two promoted machines."""
    assert len(_CASES) >= 2


@pytest.mark.parametrize(
    "case", _CASES, ids=[case.name for case in _CASES]
)
class TestReplay:
    def test_case_is_bit_identical_across_the_matrix(self, case):
        report = run_differential(case.spec, case.cycles, case.inputs)
        assert report.ok, f"{case.name}: {report.describe()}"

    def test_case_round_trips_through_json(self, case):
        restored = spec_from_json(spec_to_json(case.spec))
        assert spec_fingerprint(restored) == spec_fingerprint(case.spec)
        assert ir_fingerprint(restored) == ir_fingerprint(case.spec)

    def test_case_carries_its_provenance(self, case):
        assert isinstance(case.meta.get("seed"), int)


class TestCaseDocuments:
    def test_save_load_round_trip(self, tmp_path, counter_spec):
        path = save_case(tmp_path, counter_spec, cycles=12, inputs=(1, 2),
                         meta={"note": "counter"})
        case = load_case(path)
        assert spec_fingerprint(case.spec) == spec_fingerprint(counter_spec)
        assert case.cycles == 12
        assert case.inputs == (1, 2)
        assert case.meta["note"] == "counter"
        assert case.name == path.stem

    def test_default_stem_is_content_addressed(self, tmp_path, counter_spec):
        first = save_case(tmp_path, counter_spec, cycles=12)
        second = save_case(tmp_path, counter_spec, cycles=12)
        assert first == second
        assert len(list(tmp_path.glob("*.json"))) == 1
        assert spec_fingerprint(counter_spec).startswith(
            first.stem.removeprefix("crasher-")
        )

    def test_missing_directory_is_an_empty_corpus(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []

    def test_wrapper_rejects_unknown_keys(self, counter_spec):
        document = case_to_document(counter_spec, 12)
        document["bogus"] = 1
        with pytest.raises(SpecFormatError, match="unknown key"):
            case_from_document(document)

    @pytest.mark.parametrize("mutation, message", [
        ({"format": "not-a-case"}, "format"),
        ({"version": 99}, "version"),
        ({"run": None}, "run"),
        ({"run": {"cycles": 0, "inputs": []}}, "positive integer"),
        ({"run": {"cycles": 4, "inputs": [True]}}, "integers"),
        ({"meta": "notes"}, "meta"),
    ])
    def test_wrapper_rejects_malformed_fields(self, counter_spec,
                                              mutation, message):
        document = case_to_document(counter_spec, 12)
        document.update(mutation)
        with pytest.raises(SpecFormatError, match=message):
            case_from_document(document)

    def test_bad_json_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(SpecFormatError, match="not valid JSON"):
            load_case(bad)

    def test_path_names_the_offending_file(self, tmp_path, counter_spec):
        document = case_to_document(counter_spec, 12)
        document["version"] = 99
        bad = tmp_path / "old-case.json"
        import json

        bad.write_text(json.dumps(document))
        with pytest.raises(SpecFormatError, match="old-case"):
            load_case(bad)
