"""Tests for the differential runner, the shrinker and the fuzz session.

The centrepiece is the sabotage test: a deliberately corrupted backend is
injected into the differential matrix and the whole pipeline must catch
the mismatch, shrink the machine to a minimal reproducer, and persist it
as a corpus case that still reproduces on replay — proving the fuzzer
would catch a real equivalence bug, not just that it stays green.
"""

from __future__ import annotations

import functools

import pytest

from repro.compiler.threaded import ThreadedBackend
from repro.errors import SelectorRangeError
from repro.fuzz import (
    load_corpus,
    run_differential,
    run_fuzz_session,
)
from repro.fuzz.differential import backend_matrix
from repro.fuzz.generator import generate_machine
from repro.fuzz.shrink import shrink_case
from repro.interp.interpreter import InterpreterBackend
from repro.rtl import alu_ops
from repro.rtl.builder import SpecBuilder
from repro.rtl.validate import ensure_valid


class TestCleanDifferential:
    def test_full_matrix_is_bit_identical_on_generated_machines(self):
        for seed in (1, 2):
            machine = generate_machine(seed)
            report = run_differential(
                machine.spec, machine.cycles, machine.inputs
            )
            assert report.ok, report.describe()
            # 6 sequential configs + 6 per executor strategy
            # (serial / thread / process / lane)
            assert report.configs_run == 30
            assert "bit-identical" in report.describe()

    def test_sequential_only_when_no_executors(self):
        machine = generate_machine(3)
        report = run_differential(
            machine.spec, machine.cycles, machine.inputs, executors=()
        )
        assert report.ok
        assert report.configs_run == 6

    def test_runtime_errors_must_agree_everywhere(self):
        """A machine that breaks must break identically on every backend.

        A two-bit selector index over a two-case selector passes
        validation (coverage is only a warning) but raises
        SelectorRangeError once the counter reaches 2 — on every
        backend alike, so the report is clean with the error recorded.
        """
        builder = SpecBuilder("runtime error machine")
        builder.alu("next", alu_ops.FN_ADD, "count", 1)
        builder.selector("pick", "count.0.1", ["count", "next"])
        builder.register("count", data="next", initial_value=0)
        builder.memory("outport", address=0, data="pick", operation=3,
                       size=1)
        spec = builder.build(validate=True)

        report = run_differential(spec, cycles=8)
        assert report.ok, report.describe()
        assert report.reference_error == "SelectorRangeError"
        with pytest.raises(SelectorRangeError):
            InterpreterBackend().run(spec, cycles=8)


class CorruptingBackend(ThreadedBackend):
    """Sabotage: flips the low bit of r0's final value after a run."""

    def run(self, spec, **kwargs):
        result = super().run(spec, **kwargs)
        if "r0" in result.final_values:
            result.final_values["r0"] ^= 1
        return result


#: interpreter reference + the corrupted candidate, sequential phase only
#: (pooled runs bypass Backend.run, so the corruption would not show there)
SABOTAGED_MATRIX = (
    ("interpreter", False, InterpreterBackend),
    ("corrupted", False, CorruptingBackend),
)

sabotaged_differential = functools.partial(
    run_differential, matrix=SABOTAGED_MATRIX
)


class TestSabotage:
    def test_corruption_is_caught_shrunk_and_persisted(self, tmp_path):
        corpus_dir = tmp_path / "corpus"
        session = run_fuzz_session(
            7, 3, executors=(), shrink=True, corpus_dir=corpus_dir,
            differential=sabotaged_differential,
        )
        assert not session.ok
        assert len(session.failures) == 3
        for failure in session.failures:
            assert failure.status == "differential"
            assert "corrupted" in failure.detail
            # the shrinker must reduce every case to the minimal machine
            # that still carries an r0 for the sabotage to corrupt
            assert failure.shrink is not None
            assert len(failure.shrink.spec) <= 2
            assert failure.shrink.cycles == 1
            assert failure.crasher_path is not None
            assert failure.crasher_path.is_file()

    def test_persisted_reproducer_replays(self, tmp_path):
        corpus_dir = tmp_path / "corpus"
        run_fuzz_session(
            7, 1, executors=(), shrink=True, corpus_dir=corpus_dir,
            differential=sabotaged_differential,
        )
        cases = load_corpus(corpus_dir)
        assert len(cases) == 1
        case = cases[0]
        # still fails under the sabotaged matrix ...
        assert not sabotaged_differential(
            case.spec, case.cycles, case.inputs, executors=()
        ).ok
        # ... and passes under the real one: the bug is in the backend,
        # not the machine
        assert run_differential(
            case.spec, case.cycles, case.inputs, executors=()
        ).ok
        assert case.meta["session_seed"] == 7

    def test_shrink_can_be_disabled(self, tmp_path):
        session = run_fuzz_session(
            7, 1, executors=(), shrink=False,
            corpus_dir=tmp_path / "corpus",
            differential=sabotaged_differential,
        )
        failure = session.failures[0]
        assert failure.shrink is None
        # the unshrunk machine is persisted as-is
        case = load_corpus(tmp_path / "corpus")[0]
        assert len(case.spec) == len(generate_machine(7000021).spec)


class TestShrinker:
    def test_greedy_shrink_reaches_a_minimal_machine(self):
        machine = generate_machine(12345)
        assert len(machine.spec) > 3

        def contains_ram(spec, cycles, inputs):
            return "ram" in spec.component_map

        if "ram" not in machine.spec.component_map:
            pytest.skip("seed lost its ram; pick another seed")
        result = shrink_case(
            machine.spec, machine.cycles, machine.inputs, contains_ram
        )
        assert [c.name for c in result.spec.components] == ["ram"]
        assert result.cycles == 1
        assert result.inputs == ()
        assert result.steps > 0
        ensure_valid(result.spec)

    def test_shrunk_spec_embeds_its_cycle_count(self):
        machine = generate_machine(12345)
        result = shrink_case(
            machine.spec, machine.cycles, machine.inputs,
            lambda spec, cycles, inputs: True,
        )
        assert result.spec.cycles == result.cycles

    def test_already_minimal_case_is_untouched(self):
        machine = generate_machine(12345)

        def never_fails(spec, cycles, inputs):
            return False

        result = shrink_case(
            machine.spec, machine.cycles, machine.inputs, never_fails
        )
        assert result.steps == 0
        assert result.spec is machine.spec

    def test_raising_predicate_counts_as_not_failing(self):
        machine = generate_machine(12345)

        def explodes(spec, cycles, inputs):
            if len(spec) < len(machine.spec):
                raise RuntimeError("different bug")
            return True

        result = shrink_case(
            machine.spec, machine.cycles, machine.inputs, explodes,
        )
        # no candidate survives, except cycle/input reductions that keep
        # the component count — those must still have been explored
        assert len(result.spec) == len(machine.spec)


class TestSessionReporting:
    def test_clean_session_describes_itself(self):
        session = run_fuzz_session(21, 2, executors=("serial",))
        assert session.ok
        assert "2 machines ok" in session.describe()
        assert all(result.report.configs_run == 12
                   for result in session.results)

    def test_matrix_has_six_configurations(self):
        labels = [label for label, _, _ in backend_matrix()]
        assert labels == [
            "interpreter", "threaded", "compiled",
            "interpreter+specopt", "threaded+specopt", "compiled+specopt",
        ]
