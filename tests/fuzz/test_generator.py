"""Tests for the seeded random machine generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.cache import spec_fingerprint
from repro.fuzz.generator import (
    GeneratorConfig,
    generate_corpus,
    generate_machine,
)
from repro.rtl.validate import ensure_valid
from repro.rtl.writer import spec_to_text


class TestValidity:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**9))
    def test_every_generated_machine_is_valid(self, seed):
        machine = generate_machine(seed)
        ensure_valid(machine.spec)
        assert machine.cycles >= 1
        # outport always exists, so every run observably does something
        assert "outport" in machine.spec.component_map

    def test_component_budget_is_respected(self):
        config = GeneratorConfig(max_components=6)
        for seed in range(40):
            machine = generate_machine(seed, config)
            # the mandatory output port may exceed the budget by one
            assert len(machine.spec) <= config.max_components + 1

    def test_cycle_range_is_respected(self):
        config = GeneratorConfig(min_cycles=5, max_cycles=9)
        for seed in range(20):
            machine = generate_machine(seed, config)
            assert 5 <= machine.cycles <= 9
            assert machine.spec.cycles == machine.cycles


class TestDeterminism:
    def test_same_seed_same_machine(self):
        for seed in (0, 7, 12345):
            first = generate_machine(seed)
            second = generate_machine(seed)
            assert spec_to_text(first.spec) == spec_to_text(second.spec)
            assert first.cycles == second.cycles
            assert first.inputs == second.inputs

    def test_corpus_is_a_stable_prefix(self):
        """Extending a session re-generates the same machines plus new."""
        short = generate_corpus(11, 4)
        long = generate_corpus(11, 7)
        assert [spec_fingerprint(m.spec) for m in short] == [
            spec_fingerprint(m.spec) for m in long[:4]
        ]

    def test_different_seeds_differ(self):
        prints = {
            spec_fingerprint(generate_machine(seed).spec)
            for seed in range(20)
        }
        assert len(prints) == 20


class TestDiversity:
    """The generator must exercise every component shape, not one."""

    def test_structural_shapes_all_appear(self):
        names_seen: set[str] = set()
        shapes = {"ctrl": 0, "ram": 0, "inport": 0, "selector": 0,
                  "initial": 0}
        for seed in range(120):
            spec = generate_machine(seed).spec
            names = set(spec.component_map)
            names_seen |= names
            if "ctrl" in names:
                shapes["ctrl"] += 1
            if "ram" in names:
                shapes["ram"] += 1
            if "inport" in names:
                shapes["inport"] += 1
            if any(name.startswith("s") for name in names):
                shapes["selector"] += 1
            if any(m.initial_values for m in spec.memories()):
                shapes["initial"] += 1
        assert all(count >= 5 for count in shapes.values()), shapes

    def test_inputs_accompany_inport(self):
        saw_inputs = False
        for seed in range(60):
            machine = generate_machine(seed)
            if machine.inputs:
                assert "inport" in machine.spec.component_map
                saw_inputs = True
        assert saw_inputs


class TestConfigValidation:
    def test_tiny_budget_rejected(self):
        with pytest.raises(ValueError, match="at least 4"):
            GeneratorConfig(max_components=3)

    def test_bad_cycle_range_rejected(self):
        with pytest.raises(ValueError, match="cycle range"):
            GeneratorConfig(min_cycles=10, max_cycles=5)

    def test_with_spec_substitutes_only_the_spec(self):
        machine = generate_machine(3)
        other = generate_machine(4)
        swapped = machine.with_spec(other.spec)
        assert swapped.seed == machine.seed
        assert swapped.cycles == machine.cycles
        assert spec_to_text(swapped.spec) == spec_to_text(other.spec)
