"""Docs honesty gate for the HTTP API: every route the server — and the
fleet router — implements must be documented in ``docs/api-reference.md``.

Two sources of truth are checked against the doc: the live routing
tables (``GET_ROUTES``/``POST_ROUTES`` of both ``serving/server.py`` and
``serving/router.py``), and a source scan of both modules for
route-shaped string literals — so a route added outside the tables
cannot dodge the gate either.  The serving guide and README links are
covered too: a renamed doc file breaks here, not in a user's browser.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.serving import router as router_module
from repro.serving.protocol import (
    BATCH_FIELDS,
    NODE_HEADER,
    RETRY_HEADER,
    RUN_FIELDS,
    TRACE_HEADER,
)
from repro.serving.server import GET_ROUTES, POST_ROUTES
from repro.serving.tracing import METRIC_NAMES, ROUTER_METRIC_NAMES

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
API_REFERENCE = REPO_ROOT / "docs" / "api-reference.md"
SERVING_GUIDE = REPO_ROOT / "docs" / "serving.md"
SERVER_SOURCE = REPO_ROOT / "src" / "repro" / "serving" / "server.py"
ROUTER_SOURCE = REPO_ROOT / "src" / "repro" / "serving" / "router.py"

#: String literals in server.py/router.py that look like HTTP routes.
ROUTE_LITERAL = re.compile(r'"(/(?:v\d+/)?[a-z_]+)"')


def test_api_reference_exists_and_is_substantial():
    text = API_REFERENCE.read_text()
    assert len(text) > 2000
    assert "curl" in text


def test_every_routed_endpoint_is_documented():
    text = API_REFERENCE.read_text()
    for route in list(GET_ROUTES) + list(POST_ROUTES):
        assert route in text, (
            f"route '{route}' is served but undocumented in "
            f"{API_REFERENCE.name}"
        )


def test_every_router_endpoint_is_documented():
    text = API_REFERENCE.read_text()
    for route in (list(router_module.GET_ROUTES)
                  + list(router_module.POST_ROUTES)):
        assert route in text, (
            f"router route '{route}' is served but undocumented in "
            f"{API_REFERENCE.name}"
        )


def test_every_route_literal_in_server_source_is_documented():
    text = API_REFERENCE.read_text()
    for source_path in (SERVER_SOURCE, ROUTER_SOURCE):
        literals = set(ROUTE_LITERAL.findall(source_path.read_text()))
        assert literals  # the scan itself must keep finding the routes
        for literal in literals:
            assert literal in text, (
                f"{source_path.name} mentions route '{literal}' but "
                f"{API_REFERENCE.name} does not document it"
            )


def test_request_fields_are_documented():
    text = API_REFERENCE.read_text()
    for field in sorted(RUN_FIELDS | BATCH_FIELDS):
        assert f"`{field}`" in text, (
            f"wire field '{field}' is accepted but undocumented"
        )


def test_error_kinds_are_documented():
    text = API_REFERENCE.read_text()
    for kind in (
        "malformed_json", "bad_request", "unknown_machine",
        "unknown_backend", "unknown_executor", "unknown_route",
        "method_not_allowed", "unsupported_capability",
        "invalid_specification", "invalid_spec",
        "body_too_large", "length_required",
        "shutting_down", "internal_error", "overloaded",
        "deadline_exceeded", "worker_crash", "invalid_timeout",
        "no_healthy_node", "upstream_failed", "unknown_trace",
    ):
        assert kind in text, f"error kind '{kind}' undocumented"


def test_fleet_headers_are_documented():
    """The router's attribution headers must appear in the API reference,
    spelled exactly as the wire constants say."""
    text = API_REFERENCE.read_text()
    for header in (NODE_HEADER, RETRY_HEADER, TRACE_HEADER):
        assert f"`{header}`" in text, f"header '{header}' undocumented"


#: ``repro_``-prefixed tokens in the API reference's metrics section;
#: histogram sample suffixes fold back onto their declared family.
METRIC_TOKEN = re.compile(r"\brepro_[a-z_]+\b")


def test_metric_names_match_the_docs_both_ways():
    """The /metrics honesty gate: every metric family the server or the
    router emits is documented, and every documented family exists — a
    renamed counter breaks here, not in someone's Grafana dashboard."""
    text = API_REFERENCE.read_text()
    declared = set(METRIC_NAMES) | set(ROUTER_METRIC_NAMES)
    documented = set()
    for token in METRIC_TOKEN.findall(text):
        for suffix in ("_bucket", "_sum", "_count"):
            if token.endswith(suffix) and token[: -len(suffix)] in declared:
                token = token[: -len(suffix)]
                break
        documented.add(token)
    missing = declared - documented
    assert not missing, f"metrics emitted but undocumented: {sorted(missing)}"
    phantom = documented - declared
    assert not phantom, f"metrics documented but never emitted: {sorted(phantom)}"


def test_tracing_endpoints_are_documented():
    text = API_REFERENCE.read_text()
    assert "/v1/trace" in text
    assert "/metrics" in text
    for term in ("trace_id", "spans", "worker_run", "text/plain"):
        assert term in text, f"tracing docs do not mention '{term}'"


def test_serving_guide_covers_the_fleet():
    text = SERVING_GUIDE.read_text()
    assert "Running a fleet" in text
    assert "repro fleet" in text
    for term in ("rendezvous", "drain", "bench"):
        assert term in text.lower(), (
            f"serving guide fleet section does not mention '{term}'"
        )


def test_serving_guide_exists_and_is_linked():
    assert SERVING_GUIDE.exists()
    readme = (REPO_ROOT / "README.md").read_text()
    architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
    for doc in ("docs/serving.md", "docs/api-reference.md",
                "docs/spec-format.md"):
        assert doc in readme, f"README does not link {doc}"
    for doc in ("serving.md", "api-reference.md", "spec-format.md"):
        assert doc in architecture, f"architecture.md does not link {doc}"


def test_spec_format_doc_matches_the_implementation():
    """docs/spec-format.md must track the interchange constants."""
    from repro.rtl.interchange import FORMAT_NAME, FORMAT_VERSION
    text = (REPO_ROOT / "docs" / "spec-format.md").read_text()
    assert f'"{FORMAT_NAME}"' in text
    assert f'`{FORMAT_VERSION}`' in text
    assert API_REFERENCE.read_text().count("spec-format.md") >= 2
