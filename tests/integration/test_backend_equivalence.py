"""Property-based integration tests: all backends always agree.

This is the library-wide invariant behind the paper's claim that ASIM II
"significantly reduces the simulation time over an interpreter while
maintaining the same functionality": for randomly generated specifications
and for every bundled machine, the interpreter, threaded and compiled
backends must produce identical outputs, traces, final values and memory
contents — with and without the spec-level optimization pipeline.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.comparison import compare_all_backends, compare_backends
from repro.machines.library import all_machines, get_machine
from repro.rtl import alu_ops
from repro.rtl.builder import SpecBuilder

_FUNCTIONS = [
    alu_ops.FN_ADD,
    alu_ops.FN_SUB,
    alu_ops.FN_AND,
    alu_ops.FN_OR,
    alu_ops.FN_XOR,
    alu_ops.FN_MUL,
    alu_ops.FN_EQ,
    alu_ops.FN_LT,
    alu_ops.FN_NOT,
    alu_ops.FN_SHIFT_LEFT,
]


@st.composite
def random_datapaths(draw):
    """A random acyclic datapath: registers, ALUs, selectors and a RAM."""
    builder = SpecBuilder("random datapath")
    register_count = draw(st.integers(min_value=1, max_value=3))
    alu_count = draw(st.integers(min_value=1, max_value=5))
    registers = [f"r{i}" for i in range(register_count)]
    producers = list(registers)

    alu_names = []
    for index in range(alu_count):
        name = f"a{index}"
        funct = draw(st.sampled_from(_FUNCTIONS))
        left = draw(st.sampled_from(producers))
        right_is_const = draw(st.booleans())
        right = (
            draw(st.integers(min_value=0, max_value=255))
            if right_is_const
            else draw(st.sampled_from(producers))
        )
        builder.alu(name, funct, left, right)
        producers.append(name)
        alu_names.append(name)

    use_selector = draw(st.booleans())
    if use_selector:
        select_source = draw(st.sampled_from(alu_names + registers))
        cases = [draw(st.sampled_from(producers)) for _ in range(4)]
        builder.selector("steer", f"{select_source}.0.1", cases)
        producers.append("steer")

    for index, register in enumerate(registers):
        data = draw(st.sampled_from(producers))
        initial = draw(st.integers(min_value=0, max_value=100))
        builder.register(register, data=data, initial_value=initial, traced=True)

    # a small RAM cycling through addresses, plus a memory-mapped output port
    address_source = draw(st.sampled_from(registers))
    data_source = draw(st.sampled_from(producers))
    builder.memory(
        "ram",
        address=f"{address_source}.0.2",
        data=data_source,
        operation=draw(st.sampled_from([0, 1, 1, 5])),
        size=8,
    )
    builder.memory("outport", address=1, data=data_source, operation=3, size=2)
    return builder.build()


class TestRandomDatapaths:
    @given(random_datapaths(), st.integers(min_value=1, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_backends_agree(self, spec, cycles):
        comparison = compare_backends(spec, cycles=cycles)
        assert comparison.equivalent, "\n".join(comparison.mismatches)

    @given(random_datapaths(), st.integers(min_value=1, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_threaded_backend_agrees(self, spec, cycles):
        from repro.compiler.threaded import ThreadedBackend

        # specopt on: random datapaths routinely draw duplicate ALUs, which
        # exercises the merge pass against the interpreter reference
        comparison = compare_backends(
            spec, cycles=cycles,
            candidate=ThreadedBackend(specopt=True, cache=False),
        )
        assert comparison.equivalent, "\n".join(comparison.mismatches)

    @given(random_datapaths())
    @settings(max_examples=20, deadline=None)
    def test_unoptimized_codegen_agrees_with_optimized(self, spec):
        from repro.compiler.compiled import CompiledBackend
        from repro.compiler.optimizer import CodegenOptions

        comparison = compare_backends(
            spec,
            cycles=25,
            reference=CompiledBackend(CodegenOptions.unoptimized()),
            candidate=CompiledBackend(CodegenOptions()),
        )
        assert comparison.equivalent, "\n".join(comparison.mismatches)


class TestBundledMachines:
    """Every machine that ships with the library, on every backend.

    The interpreter is the reference; the threaded and compiled backends
    must match it bit for bit on final values, memory contents and
    memory-mapped outputs — with the spec-level optimization pipeline both
    off and on.
    """

    #: cycle budget per machine: enough to exercise real behaviour while
    #: keeping the matrix (6 machines x 2 specopt modes x 2 candidates) fast
    CYCLE_BUDGET = 600

    @pytest.mark.parametrize(
        "machine_name", [entry.name for entry in all_machines()]
    )
    @pytest.mark.parametrize("specopt", [False, True],
                             ids=["plain", "specopt"])
    def test_all_backends_bit_identical(self, machine_name, specopt):
        entry = get_machine(machine_name)
        spec = entry.build()
        cycles = min(entry.demo_cycles, self.CYCLE_BUDGET)
        results = compare_all_backends(spec, cycles=cycles, specopt=specopt)
        assert set(results) == {"threaded", "compiled"}
        for backend_name, comparison in results.items():
            assert comparison.equivalent, (
                f"{machine_name} [{backend_name}, specopt={specopt}]:\n  "
                + "\n  ".join(comparison.mismatches)
            )
            reference = comparison.reference
            candidate = comparison.candidate
            # spell the bit-identity out explicitly (not just "no mismatch")
            assert candidate.final_values == reference.final_values
            assert candidate.memory_contents == reference.memory_contents
            assert candidate.output_integers() == reference.output_integers()


class TestInstrumentationParity:
    """Override + stats + trace parity across all three backends.

    The instrumentation layer (:mod:`repro.core.instrument`) is implemented
    once and called from every backend at the same points of the cycle, so
    the same injected fault must produce the same result, the same traces
    *and the same statistics* everywhere — no per-backend skips for
    compiled stats or compiled/threaded override.
    """

    CYCLE_BUDGET = 200

    @staticmethod
    def _transient_fault(spec):
        """Flip the low bit of the first combinational component at a few
        fixed cycles — a deterministic single-event upset."""
        victim = spec.combinational()[0].name

        def fault(name, value, cycle):
            if name == victim and cycle in (3, 11, 42):
                return value ^ 1
            return value

        return fault

    @pytest.mark.parametrize(
        "machine_name", [entry.name for entry in all_machines()]
    )
    @pytest.mark.parametrize("specopt", [False, True],
                             ids=["plain", "specopt"])
    def test_same_fault_same_result_same_stats(self, machine_name, specopt):
        from repro.compiler.compiled import CompiledBackend
        from repro.compiler.threaded import ThreadedBackend
        from repro.core.iosystem import QueueIO
        from repro.errors import SimulationError
        from repro.interp.interpreter import InterpreterBackend

        entry = get_machine(machine_name)
        spec = entry.build()
        cycles = min(entry.demo_cycles, self.CYCLE_BUDGET)
        fault = self._transient_fault(spec)
        backends = [
            InterpreterBackend(),
            ThreadedBackend(specopt=specopt, cache=False),
            CompiledBackend(specopt=specopt, cache=False),
        ]
        outcomes = []
        for backend in backends:
            try:
                outcomes.append(backend.run(
                    spec, cycles=cycles, io=QueueIO((), strict=False),
                    trace=True, override=fault,
                ))
            except SimulationError as exc:
                outcomes.append(type(exc))
        reference, candidates = outcomes[0], outcomes[1:]
        if isinstance(reference, type):
            # the fault broke the machine: every backend must break the
            # same way
            assert candidates == [reference, reference]
            return
        for candidate in candidates:
            label = f"{machine_name} [{candidate.backend}, specopt={specopt}]"
            assert candidate.final_values == reference.final_values, label
            assert candidate.memory_contents == reference.memory_contents, label
            assert candidate.output_integers() == reference.output_integers(), label
            assert [t.values for t in candidate.trace.cycles] == [
                t.values for t in reference.trace.cycles
            ], label
            key = lambda a: (a.cycle, a.memory, a.kind, a.address, a.value)
            assert list(map(key, candidate.trace.accesses)) == list(
                map(key, reference.trace.accesses)
            ), label
            # full statistics parity: an override run executes the full
            # (pre-specopt) schedule everywhere, so even per-component
            # breakdowns are identical
            assert candidate.stats == reference.stats, label

    @pytest.mark.parametrize(
        "machine_name", [entry.name for entry in all_machines()]
    )
    def test_stats_parity_without_faults(self, machine_name):
        """With one specopt configuration, plain stats runs agree bit for
        bit on all three backends (the compiled backend's new full
        breakdown included)."""
        from repro.core.comparison import assert_all_backends_equivalent

        entry = get_machine(machine_name)
        spec = entry.build()
        cycles = min(entry.demo_cycles, self.CYCLE_BUDGET)
        assert_all_backends_equivalent(
            spec, cycles=cycles, specopt=False, compare_stats=True
        )

    def test_optimized_backends_agree_on_stats(self):
        """threaded and compiled with the same specopt passes execute the
        same optimized schedule, so their statistics match each other."""
        from repro.compiler.compiled import CompiledBackend
        from repro.compiler.threaded import ThreadedBackend
        from repro.core.comparison import compare_backends

        entry = get_machine("counter")
        spec = entry.build()
        comparison = compare_backends(
            spec,
            cycles=min(entry.demo_cycles, self.CYCLE_BUDGET),
            reference=ThreadedBackend(specopt=True, cache=False),
            candidate=CompiledBackend(specopt=True, cache=False),
            compare_stats=True,
        )
        assert comparison.equivalent, "\n".join(comparison.mismatches)


class TestRandomStackPrograms:
    """Random straight-line stack programs: RTL machine vs ISP golden model."""

    @given(
        st.lists(st.integers(min_value=0, max_value=200), min_size=2, max_size=6),
        st.lists(st.sampled_from(["ADD", "SUB", "MUL", "AND", "OR", "XOR", "LT", "EQ"]),
                 min_size=1, max_size=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_rtl_matches_isp(self, pushes, operators):
        from repro.core.simulator import Simulator
        from repro.isa.assembler import assemble_stack_program
        from repro.isa.isp import StackIspSimulator
        from repro.machines.stack_machine import build_stack_machine

        # keep the program balanced: enough operands for every operator
        operators = operators[: max(0, len(pushes) - 1)]
        if not operators:
            operators = ["ADD"]
            pushes = (pushes + [1, 2])[:2]
        lines = [f"PUSH {value}" for value in pushes]
        lines += operators
        lines += ["OUT", "HALT"]
        source = "\n".join(lines) + "\n"

        program = assemble_stack_program(source)
        golden = StackIspSimulator(program).run()
        machine = build_stack_machine(program)
        result = Simulator(machine.spec, backend="compiled").run(
            cycles=machine.cycles_for(golden.instructions_executed)
        )
        assert result.output_integers() == golden.outputs
