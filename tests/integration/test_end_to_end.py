"""End-to-end scenarios exercising the whole public API surface."""

from repro import (
    QueueIO,
    Simulator,
    SpecBuilder,
    TraceOptions,
    compare_backends,
    parse_spec,
    simulate,
)
from repro.analysis import fault_detection_experiment, profile_activity
from repro.compiler import generate_pascal, generate_python
from repro.machines import (
    build_stack_machine,
    prepare_division_workload,
    prepare_sieve_workload,
)
from repro.machines.tiny_computer import build_tiny_computer
from repro.synth import bill_of_materials, extract_netlist


class TestSpecTextWorkflow:
    """Parse a hand-written specification, simulate it, inspect everything."""

    SPEC = """\
# accumulating adder with memory mapped input and output
total* inport sum outport .
A sum 4 total inport
M inport 1 0 2 2
M total 0 sum 1 1
M outport 1 total 3 2
.
"""

    def test_full_workflow(self):
        spec = parse_spec(self.SPEC)
        simulator = Simulator(spec, backend="compiled")
        io = QueueIO([5, 10, 20, 40], strict=False)
        result = simulator.run(cycles=6, io=io, trace=True)
        # the running total accumulates the inputs with the pipeline latency
        # of one cycle per memory stage
        assert result.output_integers()[-1] == 75
        assert result.trace.values_of("total")[-1] == 75
        assert result.stats.cycles == 6

    def test_one_shot_helper_and_backends_agree(self):
        interp = simulate(self.SPEC, cycles=6, backend="interpreter",
                          io=QueueIO([5, 10, 20, 40], strict=False))
        compiled = simulate(self.SPEC, cycles=6, backend="compiled",
                            io=QueueIO([5, 10, 20, 40], strict=False))
        assert interp.output_integers() == compiled.output_integers()

    def test_generated_code_available_for_inspection(self):
        spec = parse_spec(self.SPEC)
        python_source = generate_python(spec)
        pascal_source = generate_pascal(spec)
        assert "def simulate" in python_source
        assert "program simulator" in pascal_source


class TestBuilderWorkflow:
    """Build a machine programmatically, verify, fault and synthesise it."""

    def build(self):
        builder = SpecBuilder("pulse divider")
        builder.alu("tick", 4, "count", 1)
        builder.alu("wrapped", 8, "tick", 15)
        builder.alu("pulse", 12, "wrapped", 0, traced=True)
        builder.register("count", data="wrapped", traced=True)
        builder.memory("outport", address=1, data="pulse", operation=3, size=2)
        return builder.build()

    def test_simulate_verify_and_profile(self):
        spec = self.build()
        assert compare_backends(spec, cycles=64).equivalent
        profile = profile_activity(spec, cycles=64)
        assert profile.toggle_counts["pulse"] > 0

    def test_fault_detection_and_synthesis(self):
        spec = self.build()
        detections = fault_detection_experiment(spec, ["wrapped"], cycles=40)
        assert detections[0].detected
        bom = bill_of_materials(spec)
        assert bom.total_packages > 0
        netlist = extract_netlist(spec)
        assert netlist.fanout("wrapped") == 2


class TestProcessorWorkflow:
    """The paper's headline scenario: simulate whole processors."""

    def test_sieve_on_the_stack_machine(self):
        workload = prepare_sieve_workload(8)
        machine = build_stack_machine(workload.program)
        result = Simulator(machine.spec, backend="compiled").run(
            cycles=workload.cycles_needed
        )
        assert result.output_integers() == workload.outputs
        assert result.stats.cycles == workload.cycles_needed

    def test_division_on_the_tiny_computer_with_trace(self):
        workload = prepare_division_workload(45, 6)
        machine = build_tiny_computer(workload.program, trace=("pc", "ac"))
        result = Simulator(machine.spec, backend="interpreter").run(
            cycles=workload.cycles_needed,
            trace=TraceOptions(trace_cycles=True, limit=32),
        )
        assert result.output_integers() == [7]
        assert len(result.trace.cycles) == 32

    def test_cross_backend_equivalence_on_processors(self):
        workload = prepare_sieve_workload(4)
        machine = build_stack_machine(workload.program)
        comparison = compare_backends(machine.spec, cycles=workload.cycles_needed)
        assert comparison.equivalent
        assert comparison.speedup > 1.0
