"""Fleet layer tests: sharding, supervision, routing, and bit-identity.

Three tiers, cheapest first:

* pure unit tests — rendezvous shard stability under node loss/return,
  the flap guard's benching arithmetic, backoff shape, and the
  supervisor's crash bookkeeping driven directly (no processes);
* one shared live fleet (module-scoped: two real ``repro serve``
  children behind a router) for the HTTP surface: sticky sharding,
  ``/v1/fleet``, quorum ``/readyz``, aggregated ``/v1/stats``, proxied
  discovery routes, and the routed-vs-in-process bit-identity proof on
  all three backends;
* per-test fleets for the destructive scenarios: crash restart, flap
  benching, and rolling-drain ordering.

The mid-batch ``kill -9`` failover scenario lives with the rest of the
chaos harness in ``test_chaos.py``.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request

import pytest

from repro.core.comparison import compare_results
from repro.core.simulator import BACKEND_NAMES
from repro.machines.library import get_machine, machine_names
from repro.serving import RunRequest, SimulationPool
from repro.serving.chaos import await_condition, hard_kill
from repro.serving.fleet import Backoff, FlapGuard, FleetError, FleetSupervisor
from repro.serving.protocol import NODE_HEADER, RETRY_HEADER, result_from_json
from repro.serving.router import ServingFleet, rank_nodes

CYCLES = 12


def get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=30) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def post(server, path, body, headers=None):
    request = urllib.request.Request(
        server.url + path, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def snapshot_of(fleet, node_id):
    return {snap["id"]: snap for snap in fleet.supervisor.describe()}[node_id]


# ---------------------------------------------------------------------------
# Unit tier: sharding
# ---------------------------------------------------------------------------


class TestShardStability:
    NODES = [f"node-{i}" for i in range(5)]
    KEYS = [f"machine:m{i}|threaded|thread" for i in range(200)]

    def test_ranking_is_deterministic(self):
        for key in self.KEYS[:20]:
            assert rank_nodes(key, self.NODES) == rank_nodes(key, self.NODES)

    def test_keys_spread_over_all_nodes(self):
        homes = {rank_nodes(key, self.NODES)[0] for key in self.KEYS}
        assert homes == set(self.NODES)

    def test_node_loss_only_remaps_its_own_shards(self):
        lost = "node-2"
        survivors = [n for n in self.NODES if n != lost]
        for key in self.KEYS:
            before = rank_nodes(key, self.NODES)[0]
            after = rank_nodes(key, survivors)[0]
            if before != lost:
                # a shard whose home survived must not move
                assert after == before
            else:
                # a lost home's shards move to their second choice
                assert after == rank_nodes(key, self.NODES)[1]

    def test_node_return_restores_original_assignment(self):
        survivors = [n for n in self.NODES if n != "node-2"]
        for key in self.KEYS[:50]:
            original = rank_nodes(key, self.NODES)[0]
            assert rank_nodes(key, survivors + ["node-2"])[0] == original

    def test_distinct_shard_keys_rank_independently(self):
        rankings = {tuple(rank_nodes(key, self.NODES)) for key in self.KEYS}
        assert len(rankings) > 10  # not one global ordering


# ---------------------------------------------------------------------------
# Unit tier: supervision arithmetic
# ---------------------------------------------------------------------------


class TestFlapGuard:
    def test_benches_after_k_crashes_in_window(self):
        clock = iter([0.0, 1.0, 2.0]).__next__
        guard = FlapGuard(max_crashes=3, window=30.0, clock=clock)
        guard.record()
        assert not guard.flapping()
        guard.record()
        assert not guard.flapping()
        guard.record()
        assert guard.flapping()

    def test_crashes_outside_the_window_do_not_count(self):
        stamps = iter([0.0, 100.0, 200.0])
        guard = FlapGuard(max_crashes=2, window=30.0, clock=stamps.__next__)
        guard.record()
        guard.record()  # 100s later: the first crash has aged out
        assert not guard.flapping()
        guard.record()  # 200s: still only one crash in any 30s window
        assert not guard.flapping()

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            FlapGuard(max_crashes=0)
        with pytest.raises(ValueError):
            FlapGuard(window=0)


class TestBackoff:
    def test_capped_exponential(self):
        backoff = Backoff(base=0.25, factor=2.0, cap=8.0)
        delays = [backoff.delay(n) for n in range(8)]
        assert delays[:5] == [0.25, 0.5, 1.0, 2.0, 4.0]
        assert delays[-1] == 8.0  # capped
        assert delays == sorted(delays)

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            Backoff(base=0)
        with pytest.raises(ValueError):
            Backoff(factor=0.5)
        with pytest.raises(ValueError):
            Backoff(base=1.0, cap=0.5)


class TestCrashBookkeeping:
    """Drive the supervisor's crash handler directly — no processes."""

    def make(self, **kwargs):
        return FleetSupervisor(nodes=1, **kwargs)

    def test_crash_schedules_backoff_restart(self):
        supervisor = self.make(bench_after=3)
        node = supervisor.nodes[0]
        with supervisor._lock:
            supervisor._on_crash(node, exit_code=-9)
        assert node.state == "restarting"
        assert node.restarts == 1
        assert node.crashes == 1
        assert node.last_exit_code == -9
        assert node.restart_at is not None

    def test_backoff_grows_between_consecutive_crashes(self):
        supervisor = self.make(bench_after=10, bench_window=1e-6)
        node = supervisor.nodes[0]
        delays = []
        for _ in range(4):
            with supervisor._lock:
                before = supervisor._clock()
                supervisor._on_crash(node, exit_code=1)
            delays.append(node.restart_at - before)
        assert delays == sorted(delays)
        assert delays[-1] > delays[0]

    def test_flapping_node_is_benched_not_restarted(self):
        supervisor = self.make(bench_after=2, bench_window=60.0)
        node = supervisor.nodes[0]
        with supervisor._lock:
            supervisor._on_crash(node, exit_code=1)
            assert node.state == "restarting"
            supervisor._on_crash(node, exit_code=1)
        assert node.state == "benched"
        assert node.snapshot()["benched"] is True
        assert "benched" in node.last_error

    def test_fleet_needs_at_least_one_node(self):
        with pytest.raises(ValueError):
            FleetSupervisor(nodes=0)


# ---------------------------------------------------------------------------
# Live tier: one shared 2-node fleet
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("fleet-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    try:
        with ServingFleet(nodes=2, health_interval=0.1,
                          start_timeout=90.0) as running:
            yield running
    finally:
        if previous is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = previous


class TestFleetHttp:
    def test_fleet_endpoint_reports_topology(self, fleet):
        status, doc, _headers = get(fleet, "/v1/fleet")
        assert status == 200
        assert doc["quorum"] == 2  # majority of 2
        nodes = {snap["id"]: snap for snap in doc["nodes"]}
        assert set(nodes) == {"node-0", "node-1"}
        for snap in nodes.values():
            assert snap["state"] == "ready"
            assert snap["url"].startswith("http://127.0.0.1:")
            assert isinstance(snap["pid"], int)
            assert snap["benched"] is False

    def test_readyz_reflects_quorum(self, fleet):
        status, doc, _headers = get(fleet, "/readyz")
        assert status == 200
        assert doc["ready"] is True
        assert doc["ready_nodes"] == 2
        assert doc["quorum"] == 2

    def test_healthz_is_the_router_itself(self, fleet):
        status, doc, _headers = get(fleet, "/healthz")
        assert status == 200
        assert doc["role"] == "router"

    def test_routing_is_sticky_per_combination(self, fleet):
        body = {"machine": "counter", "cycles": CYCLES}
        nodes = set()
        for _ in range(3):
            status, doc, headers = post(fleet, "/v1/run", body)
            assert status == 200
            assert doc["result"]["cycles_run"] == CYCLES
            nodes.add(headers[NODE_HEADER])
        assert len(nodes) == 1  # same shard -> same home, every time
        ids = set(fleet.supervisor.node_ids())
        assert nodes <= ids

    def test_no_failover_header_on_the_happy_path(self, fleet):
        status, _doc, headers = post(
            fleet, "/v1/run", {"machine": "counter", "cycles": CYCLES}
        )
        assert status == 200
        assert headers.get(RETRY_HEADER) is None

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_routed_results_bit_identical_to_in_process(
        self, fleet, backend
    ):
        requests = [
            {"cycles": CYCLES, "tag": f"r{i}", "collect_stats": True}
            for i in range(4)
        ]
        status, doc, headers = post(fleet, "/v1/batch", {
            "machine": "counter", "backend": backend, "runs": requests,
        })
        assert status == 200, doc
        assert doc["ok"] is True
        assert headers[NODE_HEADER] in fleet.supervisor.node_ids()
        spec = get_machine("counter").build()
        with SimulationPool(spec, backend=backend,
                            executor="serial") as pool:
            reference = pool.run_batch([
                RunRequest(cycles=CYCLES, tag=f"r{i}") for i in range(4)
            ])
        for ref_item, wire in zip(reference.items, doc["items"]):
            rebuilt = result_from_json(wire["result"])
            assert compare_results(ref_item.result, rebuilt) == []

    def test_discovery_routes_proxied(self, fleet):
        status, doc, headers = get(fleet, "/v1/machines")
        assert status == 200
        assert {entry["name"] for entry in doc["machines"]} == set(machine_names())
        assert headers[NODE_HEADER] in fleet.supervisor.node_ids()
        status, doc, _headers = get(fleet, "/v1/backends")
        assert status == 200
        assert {entry["name"] for entry in doc["backends"]} == set(BACKEND_NAMES)

    def test_structured_errors_from_the_front_door(self, fleet):
        status, doc, _headers = post(fleet, "/v1/run", {"machine": "no-such"})
        assert status == 404
        assert doc["error"]["type"] == "unknown_machine"
        request = urllib.request.Request(
            fleet.url + "/v1/run", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["type"] == "malformed_json"

    def test_per_item_simulation_errors_pass_through(self, fleet):
        # a run that fails on the node fails item-wise; the router must
        # not mistake that for a node failure and retry it
        status, doc, headers = post(fleet, "/v1/batch", {
            "machine": "counter",
            "runs": [{"cycles": CYCLES}, {"cycles": -1}],
        })
        assert status == 200
        assert doc["ok"] is False
        assert doc["items"][0]["ok"] is True
        assert doc["items"][1]["ok"] is False
        assert headers.get(RETRY_HEADER) is None

    def test_unknown_route_and_method(self, fleet):
        status, doc, _headers = get(fleet, "/v1/nonsense")
        assert status == 404
        assert doc["error"]["type"] == "unknown_route"
        status, doc, _headers = post(fleet, "/v1/fleet", {})
        assert status == 405
        assert doc["error"]["type"] == "method_not_allowed"

    def test_aggregated_stats(self, fleet):
        post(fleet, "/v1/run", {"machine": "counter", "cycles": CYCLES})
        status, doc, _headers = get(fleet, "/v1/stats")
        assert status == 200
        assert set(doc["nodes"]) == set(fleet.supervisor.node_ids())
        for stats in doc["nodes"].values():
            assert "requests" in stats
        assert doc["totals"]["requests"] >= 1
        assert "pool_evictions" in doc["totals"]
        assert doc["router"]["requests"]["by_route"].get("/v1/run", 0) >= 1


# ---------------------------------------------------------------------------
# Destructive tier: per-test fleets
# ---------------------------------------------------------------------------


def make_fleet(**kwargs):
    kwargs.setdefault("nodes", 2)
    kwargs.setdefault("health_interval", 0.05)
    kwargs.setdefault("start_timeout", 90.0)
    kwargs.setdefault("child_args", ["--no-disk-cache"])
    return ServingFleet(**kwargs)


class TestFailover:
    def test_killed_node_is_restarted_and_serving_continues(self):
        with make_fleet(quorum=1) as fleet:
            status, _doc, headers = post(
                fleet, "/v1/run", {"machine": "counter", "cycles": CYCLES}
            )
            assert status == 200
            home = headers[NODE_HEADER]
            hard_kill(fleet.supervisor.node(home).pid)
            # the very next request survives via failover or rerouting
            status, doc, _headers = post(
                fleet, "/v1/run", {"machine": "counter", "cycles": CYCLES}
            )
            assert status == 200
            assert doc["result"]["cycles_run"] == CYCLES
            await_condition(
                lambda: snapshot_of(fleet, home)["state"] == "ready"
                and snapshot_of(fleet, home)["restarts"] >= 1,
                timeout=30, message="supervisor restart of the killed node",
            )
            # and the restarted node is routable again
            status, _doc, _headers = post(
                fleet, "/v1/run", {"machine": "counter", "cycles": CYCLES}
            )
            assert status == 200

    def test_repeatedly_crashing_node_is_benched(self):
        from repro.serving.fleet import Backoff as FleetBackoff

        fleet = make_fleet(quorum=1, bench_after=2, bench_window=60.0)
        fleet.supervisor.backoff = FleetBackoff(base=0.05, cap=0.1)
        with fleet:
            victim = fleet.supervisor.node_ids()[0]
            first_pid = fleet.supervisor.node(victim).pid
            hard_kill(first_pid)
            # wait for the *detected* crash and respawn, not just the
            # stale ready state — the monitor needs a tick to notice
            await_condition(
                lambda: snapshot_of(fleet, victim)["state"] == "ready"
                and snapshot_of(fleet, victim)["restarts"] >= 1,
                timeout=30, message="first restart",
            )
            second_pid = fleet.supervisor.node(victim).pid
            assert second_pid != first_pid
            hard_kill(second_pid)
            await_condition(
                lambda: snapshot_of(fleet, victim)["state"] == "benched",
                timeout=30, message="flap bench",
            )
            snap = snapshot_of(fleet, victim)
            assert snap["benched"] is True
            assert snap["crashes"] == 2
            # the fleet still serves from the survivor
            status, _doc, headers = post(
                fleet, "/v1/run", {"machine": "counter", "cycles": CYCLES}
            )
            assert status == 200
            assert headers[NODE_HEADER] != victim

    def test_readyz_loses_quorum_when_a_node_dies(self):
        with make_fleet() as fleet:  # default quorum: 2 of 2
            victim = fleet.supervisor.node_ids()[0]
            hard_kill(fleet.supervisor.node(victim).pid)
            await_condition(
                lambda: get(fleet, "/readyz")[0] == 503,
                timeout=30, message="quorum loss",
            )
            status, doc, _headers = get(fleet, "/readyz")
            assert status == 503
            assert doc["reason"] in ("no_quorum", "draining")


class TestDrain:
    def test_rolling_drain_is_ordered_and_clean(self):
        fleet = make_fleet()
        fleet.start()
        post(fleet, "/v1/run", {"machine": "counter", "cycles": CYCLES})
        report = fleet.close()
        assert [entry["node"] for entry in report] == ["node-0", "node-1"]
        for entry in report:
            # SIGTERM ran the graceful close() path: clean exit code 0
            assert entry["clean"] is True, report
            assert entry["forced"] is False
        # draining is terminal and visible
        assert fleet.supervisor.draining is True
        assert all(
            snap["state"] == "stopped" for snap in fleet.supervisor.describe()
        )

    def test_start_timeout_reports_states(self):
        supervisor = FleetSupervisor(
            nodes=1, child_args=("--this-flag-does-not-exist",),
            health_interval=0.05,
        )
        with pytest.raises(FleetError):
            supervisor.start(wait=True, timeout=3.0)
