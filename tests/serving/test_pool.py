"""Tests for SimulationPool: dispatch, cache sharing, error capture."""

import threading

import pytest

from repro.compiler.cache import PrepareCache
from repro.compiler.compiled import CompiledBackend
from repro.compiler.threaded import ThreadedBackend
from repro.errors import ServingError, SimulationError
from repro.rtl.parser import parse_spec
from repro.serving import BatchRequest, RunRequest, SimulationPool, run_batch


class TestPoolBasics:
    def test_single_run(self, counter_spec):
        with SimulationPool(counter_spec, max_workers=2) as pool:
            result = pool.run(RunRequest(cycles=10))
        assert result.value("count") == 2

    def test_submit_returns_future_of_result(self, counter_spec):
        with SimulationPool(counter_spec, max_workers=2) as pool:
            future = pool.submit(RunRequest(cycles=10))
            assert future.result().cycles_run == 10

    def test_batch_results_in_request_order(self, counter_spec):
        runs = [RunRequest(cycles=c) for c in range(1, 9)]
        with SimulationPool(counter_spec, max_workers=4) as pool:
            batch = pool.run_batch(runs)
        assert batch.ok
        assert [item.result.cycles_run for item in batch.items] == list(range(1, 9))

    def test_accepts_batch_request_for_same_spec(self, counter_spec):
        request = BatchRequest.repeat(counter_spec, 3, cycles=5)
        with SimulationPool(counter_spec, max_workers=2) as pool:
            batch = pool.run_batch(request)
        assert len(batch) == 3 and batch.ok

    def test_rejects_batch_for_a_different_machine(self, counter_spec,
                                                   counter_spec_text):
        other = parse_spec(counter_spec_text.replace("next 7", "next 3"))
        with SimulationPool(counter_spec, max_workers=2) as pool:
            with pytest.raises(ServingError):
                pool.run_batch(BatchRequest.repeat(other, 2, cycles=1))

    def test_rejects_batch_for_a_different_backend(self, counter_spec):
        with SimulationPool(counter_spec, backend="interpreter",
                            max_workers=1) as pool:
            with pytest.raises(ServingError, match="backend"):
                pool.run_batch(
                    BatchRequest.repeat(counter_spec, 2, cycles=1,
                                        backend="compiled")
                )

    def test_backend_instance_in_request_matched_by_name(self, counter_spec):
        with SimulationPool(counter_spec, backend="threaded",
                            max_workers=1) as pool:
            request = BatchRequest(
                counter_spec, [RunRequest(cycles=2)],
                backend=ThreadedBackend(cache=False),
            )
            assert pool.run_batch(request).ok

    def test_plain_run_list_bypasses_backend_check(self, counter_spec):
        with SimulationPool(counter_spec, backend="interpreter",
                            max_workers=1) as pool:
            batch = pool.run_batch([RunRequest(cycles=2)])
        assert batch.ok and batch.backend == "interpreter"

    def test_equal_spec_text_is_accepted(self, counter_spec_text, counter_spec):
        reparsed = parse_spec(counter_spec_text, source_name="other.asim")
        with SimulationPool(counter_spec, max_workers=2) as pool:
            batch = pool.run_batch(BatchRequest.repeat(reparsed, 2, cycles=3))
        assert batch.ok

    def test_rejects_nonpositive_workers(self, counter_spec):
        with pytest.raises(ServingError):
            SimulationPool(counter_spec, max_workers=0)

    def test_closed_pool_rejects_submissions(self, counter_spec):
        pool = SimulationPool(counter_spec, max_workers=1)
        pool.close()
        assert pool.closed
        with pytest.raises(ServingError):
            pool.run(RunRequest(cycles=1))


class TestBackendDispatch:
    def test_threaded_workers_share_one_cached_artifact(self, counter_spec):
        cache = PrepareCache()
        backend = ThreadedBackend(cache=cache)
        with SimulationPool(counter_spec, backend=backend, max_workers=4) as pool:
            batch = pool.run_batch([RunRequest(cycles=5)] * 16)
        assert batch.ok
        # one miss (the pool's warm prepare); every worker prepare hit it
        assert cache.stats.misses == 1
        assert cache.stats.hits >= 1
        assert len(cache) == 1

    def test_compiled_workers_share_one_cached_artifact(self, counter_spec):
        cache = PrepareCache()
        backend = CompiledBackend(cache=cache)
        with SimulationPool(counter_spec, backend=backend, max_workers=4) as pool:
            batch = pool.run_batch([RunRequest(cycles=5)] * 16)
        assert batch.ok
        assert cache.stats.misses == 1
        assert len(cache) == 1

    def test_uncached_backend_prepares_once_and_shares(self, counter_spec):
        prepares = []
        backend = ThreadedBackend(cache=False)
        original = backend.prepare

        def counting_prepare(spec):
            prepares.append(threading.get_ident())
            return original(spec)

        backend.prepare = counting_prepare
        with SimulationPool(counter_spec, backend=backend, max_workers=2) as pool:
            batch = pool.run_batch([RunRequest(cycles=3)] * 6)
        assert batch.ok
        # prepared simulations are re-entrant: the warm prepare is the only
        # one, shared by every worker (no per-run prepare fallback anymore)
        assert len(prepares) == 1

    def test_workers_bind_to_the_shared_lowered_program(self, counter_spec):
        cache = PrepareCache()
        backend = ThreadedBackend(cache=cache)
        with SimulationPool(counter_spec, backend=backend, max_workers=3) as pool:
            program = pool.shared_program
            assert program is not None
            futures = [pool.submit(RunRequest(cycles=3)) for _ in range(9)]
            for future in futures:
                future.result()
            # every worker's prepared simulation wraps the same CycleProgram
            worker_prepared = backend.prepare(counter_spec)
            assert worker_prepared.program is program

    def test_interpreter_pool_shares_the_warm_program(self, counter_spec):
        from repro.interp.interpreter import InterpreterBackend

        prepares = []
        backend = InterpreterBackend()
        original = backend.prepare

        def counting_prepare(spec):
            prepares.append(1)
            return original(spec)

        backend.prepare = counting_prepare
        with SimulationPool(counter_spec, backend=backend,
                            max_workers=3) as pool:
            batch = pool.run_batch([RunRequest(cycles=10)] * 6)
            # the warm prepared interpreter program is shared by the pool
            assert pool.shared_program is not None
        assert batch.ok
        assert len(prepares) == 1  # seeded once, reused per worker
        assert all(item.result.backend == "interpreter" for item in batch.items)


class TestErrorCapture:
    def test_poisoned_run_does_not_kill_the_batch(self, counter_spec):
        runs = [RunRequest(cycles=5), RunRequest(cycles=-1), RunRequest(cycles=7)]
        with SimulationPool(counter_spec, max_workers=2) as pool:
            batch = pool.run_batch(runs)
        assert not batch.ok
        assert [item.ok for item in batch.items] == [True, False, True]
        assert isinstance(batch.failures[0].error, SimulationError)
        assert batch.items[2].result.cycles_run == 7

    def test_override_runs_on_compiled_pool(self, counter_spec):
        def stuck(name, value, cycle):
            return 0 if name == "wrapped" else value

        runs = [RunRequest(cycles=5, override=stuck), RunRequest(cycles=5)]
        with SimulationPool(counter_spec, backend="compiled",
                            max_workers=2) as pool:
            batch = pool.run_batch(runs)
        assert batch.ok
        assert batch.items[0].result.value("count") == 0
        assert batch.items[1].result.value("count") == 5

    def test_unsupporting_backend_override_is_captured(self, counter_spec):
        backend = CompiledBackend(cache=False)
        prepared_cls = type(backend.prepare(counter_spec))

        class NoOverride(prepared_cls):
            supports_override = False

        original = backend.prepare

        def prepare(spec):
            prepared = original(spec)
            prepared.__class__ = NoOverride
            return prepared

        backend.prepare = prepare
        runs = [RunRequest(cycles=2, override=lambda n, v, c: v)]
        with SimulationPool(counter_spec, backend=backend,
                            max_workers=1) as pool:
            batch = pool.run_batch(runs)
        assert not batch.ok
        assert "supports_override" in str(batch.failures[0].error)


class TestModuleLevelRunBatch:
    def test_run_batch_builds_and_closes_a_pool(self, counter_spec):
        request = BatchRequest.repeat(counter_spec, 4, cycles=10,
                                      backend="compiled")
        batch = run_batch(request, max_workers=2)
        assert batch.ok
        assert batch.backend == "compiled"
        assert batch.pool_size == 2
        assert batch.prepare_seconds >= 0.0

    def test_per_item_seconds_recorded(self, counter_spec):
        batch = run_batch(BatchRequest.repeat(counter_spec, 2, cycles=50))
        assert all(item.seconds > 0 for item in batch.items)
