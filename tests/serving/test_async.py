"""Tests for the asyncio front-end (async_run / async_run_batch)."""

import asyncio

import pytest

from repro.errors import ServingError
from repro.rtl.parser import parse_spec
from repro.serving import (
    BatchRequest,
    RunRequest,
    SimulationPool,
    async_run,
    async_run_batch,
)


class TestAsyncRunBatch:
    def test_owns_its_pool_by_default(self, counter_spec):
        request = BatchRequest.repeat(counter_spec, 6, cycles=10)
        batch = asyncio.run(async_run_batch(request, max_workers=3))
        assert batch.ok
        assert batch.pool_size == 3
        assert [r.value("count") for r in batch.results] == [2] * 6

    def test_reuses_a_provided_pool(self, counter_spec):
        async def scenario():
            with SimulationPool(counter_spec, max_workers=2) as pool:
                first = await async_run_batch(
                    BatchRequest.repeat(counter_spec, 2, cycles=4), pool=pool
                )
                second = await async_run_batch(
                    BatchRequest.repeat(counter_spec, 2, cycles=4), pool=pool
                )
                assert not pool.closed  # a borrowed pool is not closed
                return first, second

        first, second = asyncio.run(scenario())
        assert first.ok and second.ok

    def test_spec_mismatch_raises(self, counter_spec, counter_spec_text):
        other = parse_spec(counter_spec_text.replace("next 7", "next 3"))

        async def scenario():
            with SimulationPool(counter_spec, max_workers=1) as pool:
                await async_run_batch(
                    BatchRequest.repeat(other, 1, cycles=1), pool=pool
                )

        with pytest.raises(ServingError):
            asyncio.run(scenario())

    def test_per_item_errors_are_captured_not_raised(self, counter_spec):
        request = BatchRequest(
            counter_spec, [RunRequest(cycles=3), RunRequest(cycles=-1)]
        )
        batch = asyncio.run(async_run_batch(request, max_workers=2))
        assert not batch.ok
        assert [item.ok for item in batch.items] == [True, False]

    def test_event_loop_stays_responsive(self, counter_spec):
        """A concurrent coroutine makes progress while the batch runs."""
        ticks = []

        async def ticker():
            for _ in range(3):
                ticks.append(1)
                await asyncio.sleep(0)

        async def scenario():
            request = BatchRequest.repeat(counter_spec, 4, cycles=200)
            batch, _ = await asyncio.gather(
                async_run_batch(request, max_workers=2), ticker()
            )
            return batch

        batch = asyncio.run(scenario())
        assert batch.ok
        assert len(ticks) == 3


class TestAsyncRun:
    def test_single_request(self, counter_spec):
        async def scenario():
            with SimulationPool(counter_spec, max_workers=1) as pool:
                return await async_run(pool, RunRequest(cycles=10))

        result = asyncio.run(scenario())
        assert result.value("count") == 2
