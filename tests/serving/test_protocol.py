"""Unit tests for the JSON wire protocol (serving/protocol.py):
request validation, structured rejection, and result round-trips."""

from __future__ import annotations

import pickle

import pytest

from repro.core.comparison import compare_results
from repro.core.simulator import Simulator
from repro.serving.protocol import (
    BATCH_FIELDS,
    RUN_FIELDS,
    ConstantOverride,
    ProtocolError,
    batch_result_to_json,
    error_to_json,
    parse_batch_request,
    parse_run_request,
    resolve_spec,
    result_from_json,
    result_to_json,
    run_request_from_json,
)


class TestRunRequestFromJson:
    def test_minimal(self):
        run = run_request_from_json({})
        assert run.cycles is None
        assert run.inputs == ()
        assert run.collect_stats is True
        assert run.override is None

    def test_full(self):
        run = run_request_from_json({
            "cycles": 12, "inputs": [1, 2], "trace": True,
            "collect_stats": False, "tag": "t",
            "override": {"count": 3},
        })
        assert run.cycles == 12
        assert run.inputs == (1, 2)
        assert run.trace is True
        assert run.collect_stats is False
        assert run.tag == "t"
        assert run.override("count", 9, 0) == 3
        assert run.override("other", 9, 0) == 9

    @pytest.mark.parametrize("doc", [
        {"cylces": 5},                       # typo'd field
        {"cycles": "ten"},                   # wrong type
        {"cycles": True},                    # bool is not an int here
        {"inputs": "12"},                    # not a list
        {"inputs": [1, "x"]},                # non-integer element
        {"trace": "yes"},                    # non-bool trace
        {"collect_stats": 1},                # non-bool
        {"tag": 7},                          # non-string tag
        {"override": []},                    # not an object
        {"override": {}},                    # pins nothing
        {"override": {"count": "x"}},        # non-integer pin
        [],                                  # not an object at all
    ])
    def test_malformed_is_rejected_structurally(self, doc):
        with pytest.raises(ProtocolError) as excinfo:
            run_request_from_json(doc)
        assert excinfo.value.status == 400

    def test_constant_override_is_picklable(self):
        override = ConstantOverride(values=(("count", 1),))
        clone = pickle.loads(pickle.dumps(override))
        assert clone("count", 5, 0) == 1


class TestResolveSpec:
    def test_bundled_machine(self):
        spec, label, pool_key = resolve_spec({"machine": "counter"})
        assert label == "counter"
        assert pool_key == "machine:counter"
        assert spec.components

    def test_bundled_machine_spec_is_memoized(self):
        first, _, _ = resolve_spec({"machine": "counter"})
        second, _, _ = resolve_spec({"machine": "counter"})
        assert first is second  # warm path: no rebuild per request

    def test_inline_spec_text(self, counter_spec_text):
        spec, label, pool_key = resolve_spec({"spec": counter_spec_text})
        assert label == "<inline spec>"
        assert pool_key.startswith("spec:")
        assert spec.components
        # content-addressed: identical text, identical pool identity
        _, _, again = resolve_spec({"spec": counter_spec_text})
        assert again == pool_key

    def test_unknown_machine_is_404(self):
        with pytest.raises(ProtocolError) as excinfo:
            resolve_spec({"machine": "warp-core"})
        assert excinfo.value.status == 404
        assert excinfo.value.kind == "unknown_machine"

    def test_machine_and_spec_together_rejected(self, counter_spec_text):
        with pytest.raises(ProtocolError):
            resolve_spec({"machine": "counter", "spec": counter_spec_text})

    def test_neither_rejected(self):
        with pytest.raises(ProtocolError):
            resolve_spec({})

    def test_unparsable_spec_text(self):
        with pytest.raises(ProtocolError) as excinfo:
            resolve_spec({"spec": "# header\nnot a component line\n.\n"})
        assert excinfo.value.kind == "invalid_specification"

    def test_inline_json_spec_document(self, counter_spec,
                                       counter_spec_text):
        from repro.rtl.interchange import spec_to_json

        spec, label, pool_key = resolve_spec(
            {"spec": spec_to_json(counter_spec)}
        )
        assert label == "<json spec>"
        assert spec.components
        # the JSON form is content-addressed by the same fingerprint as
        # the text form: both submissions share one warm pool
        _, _, text_key = resolve_spec({"spec": counter_spec_text})
        assert pool_key == text_key

    def test_invalid_json_spec_document_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            resolve_spec({"spec": {"format": "not-a-spec"}})
        assert excinfo.value.status == 400
        assert excinfo.value.kind == "invalid_spec"
        # the SpecFormatError path survives into the message
        assert "$.format" in str(excinfo.value)

    def test_oversized_json_spec_document_is_400(self):
        from repro.rtl.interchange import MAX_COMPONENTS

        document = {
            "format": "repro-spec", "version": 1,
            "components": [
                {"type": "alu", "name": f"a{i}", "function": 0,
                 "left": 0, "right": 0}
                for i in range(MAX_COMPONENTS + 1)
            ],
        }
        with pytest.raises(ProtocolError) as excinfo:
            resolve_spec({"spec": document})
        assert excinfo.value.status == 400
        assert excinfo.value.kind == "invalid_spec"


class TestParseBatchRequest:
    def test_happy_path(self):
        batch = parse_batch_request(
            {"machine": "gcd", "runs": [{"cycles": 16}, {"tag": "b"}]},
            default_backend="threaded", default_executor="thread",
        )
        assert batch.backend == "threaded"
        assert batch.executor == "thread"
        assert len(batch.runs) == 2
        assert batch.label == "gcd"

    def test_defaults_are_overridable(self):
        batch = parse_batch_request(
            {"machine": "gcd", "backend": "compiled", "executor": "serial",
             "runs": [{}]},
            default_backend="threaded", default_executor="thread",
        )
        assert batch.backend == "compiled"
        assert batch.executor == "serial"

    @pytest.mark.parametrize("doc,kind", [
        ({"machine": "gcd"}, "bad_request"),                  # no runs
        ({"machine": "gcd", "runs": []}, "bad_request"),      # empty runs
        ({"machine": "gcd", "runs": [{}], "backend": "x"}, "unknown_backend"),
        ({"machine": "gcd", "runs": [{}], "executor": "x"}, "unknown_executor"),
        ({"machine": "gcd", "runs": [{}], "bogus": 1}, "bad_request"),
    ])
    def test_rejections_carry_a_kind(self, doc, kind):
        with pytest.raises(ProtocolError) as excinfo:
            parse_batch_request(doc, "threaded", "thread")
        assert excinfo.value.kind == kind

    def test_single_run_form_flattens_fields(self):
        batch = parse_run_request(
            {"machine": "counter", "cycles": 8, "tag": "one"},
            default_backend="interpreter", default_executor="serial",
        )
        assert len(batch.runs) == 1
        assert batch.runs[0].cycles == 8
        assert batch.runs[0].tag == "one"
        assert batch.backend == "interpreter"

    def test_single_run_form_rejects_runs_field(self):
        with pytest.raises(ProtocolError):
            parse_run_request({"machine": "counter", "runs": [{}]},
                              "threaded", "thread")


class TestResultRoundTrip:
    def test_http_wire_round_trip_is_bit_identical(self, counter_spec):
        reference = Simulator(counter_spec, backend="interpreter").run(cycles=24)
        document = result_to_json(reference)
        rebuilt = result_from_json(document)
        assert compare_results(reference, rebuilt) == []

    def test_stats_and_timing_travel(self, counter_spec):
        result = Simulator(counter_spec, backend="threaded").run(
            cycles=8, trace=False
        )
        document = result_to_json(result)
        assert document["stats"]["cycles"] == 8
        assert document["prepare_seconds"] >= 0.0
        assert "trace_text" not in document  # tracing explicitly off

    def test_trace_text_included_when_traced(self, counter_spec):
        result = Simulator(counter_spec, backend="interpreter").run(
            cycles=4, trace=True
        )
        document = result_to_json(result)
        assert "trace_text" in document
        assert document["trace_text"]

    def test_stats_omitted_when_not_collected(self, counter_spec):
        result = Simulator(counter_spec, backend="interpreter").run(cycles=4)
        document = result_to_json(result, include_stats=False)
        assert "stats" not in document


class TestBatchResultToJson:
    def test_items_and_aggregates(self, counter_spec):
        from repro.serving import RunRequest, SimulationPool

        with SimulationPool(counter_spec, backend="interpreter",
                            executor="serial") as pool:
            batch = pool.run_batch([RunRequest(cycles=4, tag="a"),
                                    RunRequest(cycles=-1, tag="boom")])
        document = batch_result_to_json(batch)
        assert document["ok"] is False
        assert document["items"][0]["ok"] is True
        assert document["items"][0]["tag"] == "a"
        assert "result" in document["items"][0]
        assert document["items"][1]["ok"] is False
        assert document["items"][1]["error"]["type"]
        assert document["runs_per_second"] >= 0.0

    def test_error_envelope_shape(self):
        document = error_to_json("bad_request", "nope")
        assert document["error"] == {"type": "bad_request", "message": "nope"}

    def test_field_constants_cover_wire_format(self):
        # the doc test (test_server_docs) relies on these being the
        # protocol's complete field surface
        assert "cycles" in RUN_FIELDS
        assert "machine" in BATCH_FIELDS


class TestShardIdentity:
    def test_bundled_machine_triple(self):
        from repro.serving.protocol import shard_identity

        identity = shard_identity(
            {"machine": "counter"}, "threaded", "thread"
        )
        assert identity == ("machine:counter", "threaded", "thread")

    def test_request_fields_override_defaults(self):
        from repro.serving.protocol import shard_identity

        identity = shard_identity(
            {"machine": "counter", "backend": "compiled",
             "executor": "process"},
            "threaded", "thread",
        )
        assert identity == ("machine:counter", "compiled", "process")

    def test_inline_spec_shares_identity_with_its_text(
        self, counter_spec_text
    ):
        from repro.serving.protocol import shard_identity

        by_text = shard_identity(
            {"spec": counter_spec_text}, "threaded", "thread"
        )
        again = shard_identity(
            {"spec": counter_spec_text}, "threaded", "thread"
        )
        assert by_text == again
        assert by_text[0].startswith("spec:")

    def test_validates_at_the_front_door(self):
        from repro.serving.protocol import ProtocolError, shard_identity

        with pytest.raises(ProtocolError) as excinfo:
            shard_identity({"machine": "no-such"}, "threaded", "thread")
        assert excinfo.value.status == 404
        with pytest.raises(ProtocolError):
            shard_identity({"machine": "counter", "backend": "no-such"},
                           "threaded", "thread")
        with pytest.raises(ProtocolError):
            shard_identity([], "threaded", "thread")
