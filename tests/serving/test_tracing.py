"""Tests for the per-request tracing pipeline and the /metrics endpoint.

Four stories, each load-bearing for a different guarantee:

* **Span completeness** — every bundled machine × backend × executor,
  driven over real HTTP: every completed request yields a retrievable
  trace whose spans nest inside their parents, whose union covers at
  least 95% of the request wall time, and which always includes a
  ``worker_run`` span.  Error items, deadline sheds and quarantined
  requests produce traces with a terminal ``error`` span — failed
  requests never vanish from observability.
* **Exporter integrity** — JSONL lines parse back into equal
  :class:`~repro.serving.tracing.Span` tuples and rotate by size; the
  SQLite sink survives a mid-write ``SIGKILL`` with no corrupt rows; the
  ring buffer evicts oldest-first without touching in-flight traces.
* **Metrics honesty** — ``GET /metrics`` emits exactly the declared
  metric families, in parseable Prometheus text exposition format, and
  the fleet router merges child payloads under per-node labels.
* **Counter atomicity** — the regression tests for the lost-update race
  on ``/v1/stats``-surfaced counters (server route counters and the
  :class:`~repro.compiler.cache.DiskCache` hit/miss/write-error
  counters), hammered from many threads with a tiny switch interval.
"""

from __future__ import annotations

import json
import os
import sqlite3
import subprocess
import sys
import textwrap
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.simulator import BACKEND_NAMES
from repro.machines.library import get_machine, machine_names
from repro.serving import RunRequest, SimulationPool, SimulationServer
from repro.serving.chaos import KillWorker, await_condition, hard_kill
from repro.serving.executor import EXECUTOR_NAMES
from repro.serving.protocol import TRACE_HEADER
from repro.serving.tracing import (
    LATENCY_BUCKETS,
    METRIC_NAMES,
    ROUTER_METRIC_NAMES,
    SPAN_KINDS,
    JsonlExporter,
    RequestTrace,
    Span,
    SqliteExporter,
    TraceBuilder,
    TraceRecorder,
    coverage_fraction,
    make_trace_id,
    merge_node_metrics,
    metric_base_name,
    metric_line,
    sanitize_trace_id,
)

#: Parent/child containment tolerance: spans are stamped with separate
#: ``time.monotonic()`` reads, so edges can disagree by scheduler noise.
EPSILON = 5e-3


def spec_for(name: str):
    machine = get_machine(name).build()
    return getattr(machine, "spec", machine)


@pytest.fixture(scope="module")
def server():
    with SimulationServer(
        port=0, artifact_cache=False, max_workers=2, max_pools=4,
        trace_ring=512,
    ) as running:
        yield running


def get(server, path, headers=None):
    request = urllib.request.Request(server.url + path,
                                     headers=dict(headers or {}))
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), dict(exc.headers)


def post(server, path, body, headers=None):
    payload = json.dumps(body).encode()
    request = urllib.request.Request(
        server.url + path, data=payload,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def fetch_trace(server, trace_id) -> RequestTrace:
    # the trace enters the ring just *after* the response bytes hit the
    # socket (export cost stays off client latency), so an immediate
    # fetch can race the server thread by one scheduling quantum
    deadline = time.monotonic() + 10.0
    while True:
        status, payload, _headers = get(server, f"/v1/trace/{trace_id}")
        if status == 200 or time.monotonic() >= deadline:
            break
        time.sleep(0.01)
    assert status == 200, payload
    document = json.loads(payload)
    document.pop("protocol", None)
    return RequestTrace.from_json(document)


def assert_well_formed(trace: RequestTrace, require_worker_run=True) -> None:
    """The span-completeness invariants every finished trace must hold."""
    spans = trace.spans
    assert spans, "a finished trace must carry spans"
    root = spans[0]
    assert root.name == "request" and root.parent is None
    for span in spans:
        assert span.name in SPAN_KINDS, span.name
        assert span.duration >= 0.0, span
        if span.parent is not None:
            assert 0 <= span.parent < len(spans), span
            parent = spans[span.parent]
            assert parent.start - EPSILON <= span.start, (parent, span)
            assert span.end <= parent.end + EPSILON, (parent, span)
    # same-parent spans of the same batch item are sequential stages
    # (queue -> run -> ipc) and must not overlap each other
    by_slot: dict[tuple, list[Span]] = {}
    for span in spans[1:]:
        if span.item is not None:
            by_slot.setdefault((span.parent, span.item), []).append(span)
    for siblings in by_slot.values():
        ordered = sorted(siblings, key=lambda s: s.start)
        for before, after in zip(ordered, ordered[1:]):
            assert before.end <= after.start + EPSILON, (before, after)
    assert coverage_fraction(trace) >= 0.95, trace
    if require_worker_run:
        assert any(span.name == "worker_run" for span in spans), spans


class TestSpanCompletenessMatrix:
    """Every bundled machine × backend × executor, over real HTTP."""

    @pytest.mark.parametrize("machine", machine_names())
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_every_completed_request_yields_a_complete_trace(
        self, server, machine, backend, executor
    ):
        status, document, headers = post(server, "/v1/batch", {
            "machine": machine,
            "backend": backend,
            "executor": executor,
            "runs": [{"cycles": 8}, {"cycles": 8}],
        })
        assert status == 200, document
        assert all(item["ok"] for item in document["items"]), document
        trace_id = headers[TRACE_HEADER]
        trace = fetch_trace(server, trace_id)
        assert trace.trace_id == trace_id
        assert trace.route == "/v1/batch"
        assert trace.status == 200
        assert trace.backend and trace.executor == executor
        assert_well_formed(trace)
        names = {span.name for span in trace.spans}
        assert {"http_parse", "admission_wait", "pool_resolve",
                "executor_dispatch", "serialize", "pool_queue"} <= names
        # both batch items contributed worker-side spans
        items_seen = {span.item for span in trace.spans
                      if span.name == "worker_run"}
        assert items_seen == {0, 1}

    def test_single_run_route_is_traced_too(self, server):
        status, _document, headers = post(server, "/v1/run", {
            "machine": "counter", "cycles": 16,
        })
        assert status == 200
        trace = fetch_trace(server, headers[TRACE_HEADER])
        assert trace.route == "/v1/run"
        assert_well_formed(trace)

    def test_lane_groups_appear_for_lane_compatible_machines(self, server):
        status, document, headers = post(server, "/v1/batch", {
            "machine": "stack-machine-sieve",
            "backend": "compiled",
            "executor": "lane",
            "runs": [{"cycles": 8}] * 3,
        })
        assert status == 200 and all(i["ok"] for i in document["items"])
        trace = fetch_trace(server, headers[TRACE_HEADER])
        assert_well_formed(trace)
        lanes = [span for span in trace.spans if span.name == "lane_group"]
        assert lanes, trace.spans
        # every lane slice nests inside its group span
        for span in trace.spans:
            if span.name == "worker_run" and span.item is not None:
                parent = trace.spans[span.parent]
                assert parent.name in ("lane_group", "executor_dispatch")

    def test_client_supplied_trace_id_is_echoed(self, server):
        chosen = make_trace_id()
        status, _doc, headers = post(
            server, "/v1/run", {"machine": "counter", "cycles": 4},
            headers={TRACE_HEADER: chosen},
        )
        assert status == 200
        assert headers[TRACE_HEADER] == chosen
        assert fetch_trace(server, chosen).trace_id == chosen

    def test_unsafe_trace_id_is_replaced_not_echoed(self, server):
        status, _doc, headers = post(
            server, "/v1/run", {"machine": "counter", "cycles": 4},
            headers={TRACE_HEADER: "x" * 300},
        )
        assert status == 200
        assert headers[TRACE_HEADER] != "x" * 300
        assert len(headers[TRACE_HEADER]) <= 128


class TestErrorTraces:
    """Failed work must never vanish from the trace pipeline."""

    def test_protocol_error_leaves_a_terminal_error_span(self, server):
        status, document, headers = post(server, "/v1/run",
                                         {"machine": "warp-core"})
        assert status == 404, document
        trace = fetch_trace(server, headers[TRACE_HEADER])
        assert trace.status == 404
        assert trace.spans[-1].name == "error"
        assert "unknown_machine" in (trace.spans[-1].detail or "")
        assert_well_formed(trace, require_worker_run=False)

    def test_deadline_shed_items_carry_error_spans(self, server):
        # a sub-millisecond deadline on a long run: the item is shed or
        # interrupted, and either way its trace records a terminal error
        status, document, headers = post(server, "/v1/batch", {
            "machine": "counter",
            "executor": "thread",
            "runs": [
                {"cycles": 2_000_000, "timeout_seconds": 0.001},
                {"cycles": 4},
            ],
        })
        assert status == 200
        assert not document["items"][0]["ok"]
        assert document["items"][1]["ok"]
        trace = fetch_trace(server, headers[TRACE_HEADER])
        assert_well_formed(trace)  # the healthy item still ran
        errors = [span for span in trace.spans if span.name == "error"]
        assert any(span.item == 0 for span in errors), trace.spans

    def test_malformed_json_is_traced(self, server):
        request = urllib.request.Request(
            server.url + "/v1/run", data=b"{nope",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        trace_id = excinfo.value.headers[TRACE_HEADER]
        excinfo.value.read()
        trace = fetch_trace(server, trace_id)
        assert trace.status == 400
        assert trace.spans[-1].name == "error"

    def test_quarantined_request_keeps_a_terminal_error_span(self, counter_spec):
        # pool-level: a poisoned request kills its worker twice and is
        # quarantined; its BatchItem still carries the error span chain
        with SimulationPool(counter_spec, max_workers=2,
                            executor="process") as pool:
            result = pool.run_batch([
                RunRequest(cycles=50,
                           override=KillWorker(spare_pid=os.getpid())),
                RunRequest(cycles=8),
            ])
        assert result.quarantined >= 1
        poisoned = result.items[0]
        assert not poisoned.ok
        assert any(span.name == "error" for span in poisoned.spans), \
            poisoned.spans
        healthy = result.items[1]
        assert any(span.name == "worker_run" for span in healthy.spans)

    def test_pool_level_spans_cover_queue_and_run(self, counter_spec):
        for executor in EXECUTOR_NAMES:
            with SimulationPool(counter_spec, max_workers=2,
                                executor=executor) as pool:
                result = pool.run_batch([RunRequest(cycles=8)] * 2)
            for item in result.items:
                names = [span.name for span in item.spans]
                assert "pool_queue" in names, (executor, names)
                assert "worker_run" in names, (executor, names)
                if executor == "process":
                    assert "chunk_ipc" in names, names


@pytest.fixture()
def counter_spec():
    return spec_for("counter")


def make_trace(trace_id="t-1", spans=None) -> RequestTrace:
    spans = spans if spans is not None else (
        Span("request", 100.0, 1.0),
        Span("http_parse", 100.0, 0.2, 0),
        Span("worker_run", 100.2, 0.8, 0, "w-0", 0, None),
    )
    return RequestTrace(
        trace_id=trace_id, route="/v1/run", status=200,
        started=1700000000.0, duration=1.0, spans=tuple(spans),
        label="counter", backend="threaded", executor="thread",
    )


class TestJsonlExporter:
    def test_round_trip_preserves_span_tuples(self, tmp_path):
        exporter = JsonlExporter(tmp_path / "traces.jsonl")
        traces = [make_trace(f"t-{i}") for i in range(5)]
        for trace in traces:
            exporter.export(trace)
        exporter.close()
        loaded = JsonlExporter.read(tmp_path / "traces.jsonl")
        assert [t.trace_id for t in loaded] == [t.trace_id for t in traces]
        for original, copy in zip(traces, loaded):
            assert copy.spans == original.spans
            assert copy == original

    def test_rotation_by_size_keeps_one_predecessor(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        exporter = JsonlExporter(path, max_bytes=2048)
        for i in range(64):
            exporter.export(make_trace(f"t-{i:03d}"))
        exporter.close()
        rotated = path.with_name(path.name + ".1")
        assert rotated.exists()
        assert path.stat().st_size <= 2048 + 1024
        # both generations parse cleanly and ids never repeat
        ids = [t.trace_id for t in
               JsonlExporter.read(rotated) + JsonlExporter.read(path)]
        assert len(ids) == len(set(ids))
        assert "t-063" in ids

    def test_read_skips_torn_tail_line(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        exporter = JsonlExporter(path)
        exporter.export(make_trace("t-whole"))
        exporter.close()
        with open(path, "ab") as handle:
            handle.write(b'{"trace_id": "t-torn", "rou')  # crash mid-write
        loaded = JsonlExporter.read(path)
        assert [t.trace_id for t in loaded] == ["t-whole"]


class TestSqliteExporter:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "traces.sqlite"
        exporter = SqliteExporter(path)
        traces = [make_trace(f"t-{i}") for i in range(4)]
        for trace in traces:
            exporter.export(trace)
        exporter.close()
        loaded = SqliteExporter.read(path)
        assert sorted(t.trace_id for t in loaded) == \
            sorted(t.trace_id for t in traces)
        by_id = {t.trace_id: t for t in loaded}
        for original in traces:
            assert by_id[original.trace_id].spans == original.spans

    def test_survives_hard_kill_mid_write(self, tmp_path):
        """SIGKILL a process that is writing traces in a tight loop; the
        database must come back with zero corrupt rows and only whole
        traces visible through ``read(complete_only=True)``."""
        path = tmp_path / "traces.sqlite"
        script = textwrap.dedent(f"""
            import sys
            sys.path.insert(0, {str(os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src"))!r})
            from repro.serving.tracing import RequestTrace, Span, SqliteExporter
            exporter = SqliteExporter({str(path)!r})
            i = 0
            print("ready", flush=True)
            while True:
                spans = tuple(
                    Span("worker_run", 100.0 + j, 0.5, None, "w", j, None)
                    for j in range(40)
                )
                exporter.export(RequestTrace(
                    trace_id=f"t-{{i}}", route="/v1/run", status=200,
                    started=1.0, duration=1.0, spans=spans,
                ))
                i += 1
        """)
        process = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        try:
            assert process.stdout.readline().strip() == b"ready"
            await_condition(
                lambda: path.exists() and path.stat().st_size > 0,
                message="first committed trace",
            )
            time.sleep(0.2)  # let a few hundred transactions through
        finally:
            hard_kill(process.pid)
            process.wait(timeout=10)
            process.stdout.close()
            process.stderr.close()
        loaded = SqliteExporter.read(path, complete_only=True)
        assert loaded, "at least one committed trace survives the kill"
        for trace in loaded:
            assert len(trace.spans) == 40  # whole traces only
        with sqlite3.connect(path) as connection:
            (verdict,) = connection.execute(
                "PRAGMA integrity_check").fetchone()
        assert verdict == "ok"


class TestRingBuffer:
    def test_evicts_oldest_without_dropping_in_flight(self):
        recorder = TraceRecorder(ring_size=4)
        in_flight = recorder.begin("/v1/run", "t-inflight")
        finished = []
        for i in range(10):
            builder = recorder.begin("/v1/run", f"t-{i}")
            builder.mark("http_parse")
            recorder.finish(builder, 200)
            finished.append(builder.trace_id)
        # the four newest survive, the rest were evicted oldest-first
        assert [recorder.get(tid) is not None for tid in finished] == \
            [False] * 6 + [True] * 4
        snapshot = recorder.snapshot()
        assert snapshot["ring_evictions"] == 6
        assert snapshot["recorded"] == 10
        # the in-flight builder was untouched; finishing it now works
        in_flight.mark("http_parse")
        recorder.finish(in_flight, 200)
        assert recorder.get("t-inflight") is not None

    def test_export_errors_are_counted_not_raised(self, tmp_path):
        class Exploding:
            def export(self, trace):
                raise RuntimeError("disk on fire")

            def close(self):
                pass

        recorder = TraceRecorder(ring_size=4, exporters=(Exploding(),))
        builder = recorder.begin("/v1/run", "t-x")
        builder.mark("http_parse")
        recorder.finish(builder, 200)  # must not raise
        assert recorder.snapshot()["export_errors"] == 1
        assert recorder.get("t-x") is not None


class TestMetricsEndpoint:
    def parse_names(self, text: str) -> set:
        names = set()
        declared = set()
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                declared.add(line.split()[2])
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            sample = line.split("{", 1)[0].split(" ", 1)[0]
            names.add(metric_base_name(sample, declared))
        return names

    def test_scrape_is_exactly_the_declared_families(self, server):
        # run one traced request first so histograms have observations
        post(server, "/v1/run", {"machine": "counter", "cycles": 4})
        status, payload, headers = get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = payload.decode()
        assert self.parse_names(text) == set(METRIC_NAMES)
        # histogram buckets are cumulative and end at +Inf
        buckets = [line for line in text.splitlines()
                   if line.startswith("repro_span_duration_seconds_bucket")
                   and 'kind="worker_run"' in line]
        assert buckets and 'le="+Inf"' in buckets[-1]
        counts = [float(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)
        assert len(buckets) == len(LATENCY_BUCKETS) + 1

    def test_stats_surface_tracing_counters(self, server):
        status, payload, _headers = get(server, "/v1/stats")
        document = json.loads(payload)
        assert status == 200
        assert document["tracing"]["recorded"] >= 1
        assert "trace_sink" in document["config"]

    def test_merge_node_metrics_adds_node_labels(self):
        node_texts = {
            "node-0": ("# HELP repro_pools_live Warm pools.\n"
                       "# TYPE repro_pools_live gauge\n"
                       "repro_pools_live 2\n"),
            "node-1": ("# HELP repro_pools_live Warm pools.\n"
                       "# TYPE repro_pools_live gauge\n"
                       "repro_pools_live 3\n"
                       "repro_http_requests_total{route=\"/v1/run\"} 7\n"),
        }
        lines = merge_node_metrics(node_texts)
        assert 'repro_pools_live{node="node-0"} 2' in lines
        assert 'repro_pools_live{node="node-1"} 3' in lines
        assert ('repro_http_requests_total{node="node-1",route="/v1/run"} 7'
                in lines)
        # exactly one header pair per family, before its samples
        assert lines.count("# TYPE repro_pools_live gauge") == 1

    def test_metric_line_escaping(self):
        line = metric_line("m", 1, {"label": 'a"b\\c\nd'})
        assert line == 'm{label="a\\"b\\\\c\\nd"} 1'


class TestTraceIds:
    def test_sanitize_accepts_safe_ids(self):
        assert sanitize_trace_id("abc-DEF_1.2") == "abc-DEF_1.2"

    @pytest.mark.parametrize("bad", [
        None, "", "x" * 129, "sp ace", "new\nline", "héllo", "a/b",
    ])
    def test_sanitize_replaces_unsafe_ids(self, bad):
        fresh = sanitize_trace_id(bad)
        assert fresh != bad
        assert len(fresh) == 32


class TestCounterAtomicity:
    """Regression: counters surfaced by ``/v1/stats`` must not lose
    updates under thread contention (they are bare ``+=`` on ints, which
    is a read-modify-write the GIL does not make atomic)."""

    THREADS = 8
    PER_THREAD = 2_000

    def hammer(self, target) -> None:
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # force preemption inside the +=
        try:
            workers = [threading.Thread(target=target)
                       for _ in range(self.THREADS)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        finally:
            sys.setswitchinterval(old)

    def test_server_route_counters_are_exact(self, server):
        before = server._requests.get("/hammer", 0)

        def spin():
            for _ in range(self.PER_THREAD):
                server.count_request("/hammer")

        self.hammer(spin)
        expected = before + self.THREADS * self.PER_THREAD
        assert server._requests["/hammer"] == expected

    def test_disk_cache_write_errors_are_exact(self, tmp_path):
        from repro.compiler.cache import DiskCache

        cache = DiskCache(tmp_path / "cache")

        def spin():
            for _ in range(self.PER_THREAD):
                cache._note_write_failure(OSError("synthetic"))

        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            self.hammer(spin)
        assert cache.write_errors == self.THREADS * self.PER_THREAD
        assert cache.degraded

    def test_disk_cache_miss_counters_are_exact(self, tmp_path):
        from repro.compiler.cache import DiskCache

        cache = DiskCache(tmp_path / "cache")

        def spin():
            for _ in range(self.PER_THREAD):
                cache.load_program("0" * 64, "missing")

        self.hammer(spin)
        assert cache.stats.misses == self.THREADS * self.PER_THREAD

    def test_disk_cache_survives_pickling(self, tmp_path):
        import pickle

        from repro.compiler.cache import DiskCache

        cache = DiskCache(tmp_path / "cache")
        clone = pickle.loads(pickle.dumps(cache))
        clone._count_hit()  # the lock was rebuilt on the other side
        assert clone.stats.hits == 1


class TestFleetTracing:
    """The router end of the pipeline: forwarded ids, fan-out lookup,
    merged per-node metrics.  One small real fleet keeps this honest."""

    def test_trace_rides_through_the_router(self, tmp_path):
        from repro.serving.router import ServingFleet

        with ServingFleet(nodes=1, trace_sink="jsonl",
                          trace_dir=str(tmp_path)) as fleet:
            body = json.dumps({"machine": "counter", "cycles": 8}).encode()
            request = urllib.request.Request(
                fleet.url + "/v1/run", data=body,
                headers={"Content-Type": "application/json",
                         TRACE_HEADER: "fleet-trace-1"},
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                assert response.headers[TRACE_HEADER] == "fleet-trace-1"
            with urllib.request.urlopen(
                fleet.url + "/v1/trace/fleet-trace-1", timeout=30
            ) as response:
                document = json.loads(response.read())
                assert response.headers["X-Repro-Node"] == "node-0"
            names = [span["name"] for span in document["spans"]]
            assert "worker_run" in names
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(fleet.url + "/v1/trace/absent",
                                       timeout=30)
            assert excinfo.value.code == 404
            error = json.loads(excinfo.value.read())
            assert error["error"]["type"] == "unknown_trace"
            with urllib.request.urlopen(fleet.url + "/metrics",
                                        timeout=30) as response:
                text = response.read().decode()
            for family in ROUTER_METRIC_NAMES:
                assert family in text
            assert 'node="node-0"' in text
            assert "repro_span_duration_seconds_bucket" in text
        # after the drain the node's durable export holds the trace
        exported = []
        for path in tmp_path.rglob("traces.jsonl"):
            exported += JsonlExporter.read(path)
        assert any(t.trace_id == "fleet-trace-1" for t in exported)


class TestBuilderAssembly:
    def test_phases_tile_the_request_interval(self):
        builder = TraceBuilder("/v1/run", trace_id="t")
        time.sleep(0.002)
        builder.mark("http_parse")
        time.sleep(0.002)
        builder.mark("admission_wait")
        time.sleep(0.002)
        builder.mark("serialize")
        trace = builder.build(200)
        phases = [span for span in trace.spans[1:] if span.item is None]
        assert [span.name for span in phases] == \
            ["http_parse", "admission_wait", "serialize"]
        for before, after in zip(phases, phases[1:]):
            assert after.start == pytest.approx(before.end, abs=1e-9)
        assert coverage_fraction(trace) >= 0.99

    def test_item_spans_are_rebased_onto_dispatch(self):
        builder = TraceBuilder("/v1/batch", trace_id="t")
        builder.mark("http_parse")
        base = time.monotonic()

        class FakeItem:
            spans = (
                Span("pool_queue", base, 0.0, None, None, 0, None),
                Span("lane_group", base, 0.0, None, "w", 0, None),
                Span("worker_run", base, 0.0, 1, "w", 0, None),
            )

        builder.mark("executor_dispatch")
        builder.add_items([FakeItem()])
        builder.mark("serialize")
        trace = builder.build(200)
        by_name = {span.name: span for span in trace.spans}
        dispatch_index = trace.spans.index(by_name["executor_dispatch"])
        assert by_name["pool_queue"].parent == dispatch_index
        assert by_name["lane_group"].parent == dispatch_index
        # the relative parent (1 -> lane_group) was rebased, not dropped
        assert trace.spans[by_name["worker_run"].parent].name == "lane_group"
