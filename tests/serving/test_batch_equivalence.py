"""Batched execution is bit-identical to sequential on every backend.

This is the serving layer's central correctness claim, mirroring the
paper's interpreter-vs-compiler equivalence argument: fanning runs out
over a worker pool must not change a single observable bit — final
component values, full memory contents, and the memory-mapped output
stream all match a sequential run of the same prepared backend.  The
sweep covers every strategy that reorganises execution: worker threads
sharing one in-process artifact, worker processes binding to the lowered
program pickled to them at pool startup, and lane groups running N
variants through one walk of the dependency schedule.
"""

import pytest

from repro.core.simulator import BACKEND_NAMES, make_backend
from repro.machines.library import all_machines, get_machine
from repro.serving import RunRequest, SimulationPool

#: Every strategy that reorganises execution must preserve bit-identity
#: (serial trivially shares the sequential code path and is covered by
#: the executor tests).
EXECUTORS = ("thread", "process", "lane")

#: Workers per strategy in the sweep (lane runs inline on one thread).
EXECUTOR_WORKERS = {"thread": 4, "process": 2, "lane": 1}

#: Bundled machines exercised by the sweep; cycles capped to keep the
#: interpreter rows fast while still covering memories, selectors and I/O.
MACHINE_CYCLES = {
    "counter": 40,
    "fibonacci": 20,
    "gcd": 16,
    "traffic-light": 30,
    "stack-machine-sieve": 1200,
    "tiny-computer": 400,
    "fuzz-rom": 41,
    "fuzz-datapath": 9,
}


def observables(result):
    return (
        result.final_values,
        result.memory_contents,
        [(event.address, event.value) for event in result.outputs],
    )


def test_every_bundled_machine_is_covered():
    assert set(MACHINE_CYCLES) == {entry.name for entry in all_machines()}


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
@pytest.mark.parametrize("machine_name", sorted(MACHINE_CYCLES))
def test_batched_equals_sequential(machine_name, backend_name, executor):
    entry = get_machine(machine_name)
    spec = entry.build()
    cycles = MACHINE_CYCLES[machine_name]
    runs = [RunRequest(cycles=cycles) for _ in range(6)]

    prepared = make_backend(backend_name).prepare(spec)
    sequential = [
        observables(prepared.run(cycles=run.cycles, io=run.make_io()))
        for run in runs
    ]

    workers = EXECUTOR_WORKERS[executor]
    with SimulationPool(spec, backend=backend_name, executor=executor,
                        max_workers=workers) as pool:
        batch = pool.run_batch(runs)

    assert batch.ok, [str(item.error) for item in batch.failures]
    batched = [observables(item.result) for item in batch.items]
    assert batched == sequential


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
@pytest.mark.parametrize("machine_name", sorted(MACHINE_CYCLES))
def test_lane_groups_equal_sequential(machine_name, backend_name):
    """Lane groups are bit-identical per lane, on every bundled machine.

    ``trace=False`` is explicit so every request is lane-eligible even on
    machines whose ``*`` trace declarations would resolve ``trace=None``
    to tracing on (those would silently fall back to the scalar path and
    this test would prove nothing about lanes).  ``lane_width=4`` with 6
    runs also exercises group splitting: one full-width group plus a
    two-lane remainder.
    """
    entry = get_machine(machine_name)
    spec = entry.build()
    cycles = MACHINE_CYCLES[machine_name]
    runs = [RunRequest(cycles=cycles, trace=False) for _ in range(6)]

    prepared = make_backend(backend_name).prepare(spec)
    sequential = [
        observables(prepared.run(cycles=run.cycles, io=run.make_io()))
        for run in runs
    ]

    with SimulationPool(spec, backend=backend_name, executor="lane",
                        lane_width=4) as pool:
        batch = pool.run_batch(runs)

    assert batch.ok, [str(item.error) for item in batch.failures]
    assert [observables(item.result) for item in batch.items] == sequential


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_lane_heterogeneous_cycles_group_by_profile(backend_name):
    """Mixed cycle counts form one lane group per profile, results in
    submission order and bit-identical to one-by-one runs."""
    spec = get_machine("counter").build()
    # interleaved profiles: 3 runs at 8 cycles, 3 at 17, 2 at 1
    cycle_counts = (8, 17, 1, 8, 17, 1, 8, 17)
    runs = [RunRequest(cycles=c, trace=False) for c in cycle_counts]

    prepared = make_backend(backend_name).prepare(spec)
    sequential = [
        observables(prepared.run(cycles=run.cycles, io=run.make_io()))
        for run in runs
    ]
    with SimulationPool(spec, backend=backend_name, executor="lane") as pool:
        batch = pool.run_batch(runs)
    assert batch.ok, [str(item.error) for item in batch.failures]
    assert [observables(item.result) for item in batch.items] == sequential


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_lane_inside_process_workers_stays_identical(backend_name):
    """``--executor process --lane-width K`` composes: each worker process
    runs its chunk as lane groups, still bit-identical."""
    spec = get_machine("gcd").build()
    runs = [
        RunRequest(cycles=16, inputs=(i, i + 1), trace=False)
        for i in range(8)
    ]

    prepared = make_backend(backend_name).prepare(spec)
    sequential = [
        observables(prepared.run(cycles=run.cycles, io=run.make_io()))
        for run in runs
    ]
    with SimulationPool(spec, backend=backend_name, executor="process",
                        max_workers=2, lane_width=4) as pool:
        batch = pool.run_batch(runs)
    assert batch.ok, [str(item.error) for item in batch.failures]
    assert [observables(item.result) for item in batch.items] == sequential


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_varied_cycle_counts_stay_identical(backend_name):
    """Heterogeneous batches (different cycles per run) match one-by-one."""
    spec = get_machine("counter").build()
    runs = [RunRequest(cycles=cycles) for cycles in (1, 3, 8, 17, 40)]

    prepared = make_backend(backend_name).prepare(spec)
    sequential = [
        observables(prepared.run(cycles=run.cycles, io=run.make_io()))
        for run in runs
    ]
    with SimulationPool(spec, backend=backend_name, max_workers=3) as pool:
        batched = [observables(item.result) for item in pool.run_batch(runs)]
    assert batched == sequential


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_input_driven_runs_stay_identical(backend_name):
    """Runs consuming memory-mapped inputs get isolated I/O per run."""
    spec = get_machine("gcd").build()
    runs = [RunRequest(cycles=16, inputs=(i, i + 1)) for i in range(4)]

    prepared = make_backend(backend_name).prepare(spec)
    sequential = [
        observables(prepared.run(cycles=run.cycles, io=run.make_io()))
        for run in runs
    ]
    with SimulationPool(spec, backend=backend_name, max_workers=4) as pool:
        batched = [observables(item.result) for item in pool.run_batch(runs)]
    assert batched == sequential
