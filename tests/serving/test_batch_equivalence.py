"""Batched execution is bit-identical to sequential on every backend.

This is the serving layer's central correctness claim, mirroring the
paper's interpreter-vs-compiler equivalence argument: fanning runs out
over a worker pool must not change a single observable bit — final
component values, full memory contents, and the memory-mapped output
stream all match a sequential run of the same prepared backend.  The
sweep covers both concurrent strategies: worker threads sharing one
in-process artifact, and worker processes binding to the lowered program
pickled to them at pool startup.
"""

import pytest

from repro.core.simulator import BACKEND_NAMES, make_backend
from repro.machines.library import all_machines, get_machine
from repro.serving import RunRequest, SimulationPool

#: Both concurrent strategies must preserve bit-identity (serial trivially
#: shares the sequential code path and is covered by the executor tests).
EXECUTORS = ("thread", "process")

#: Bundled machines exercised by the sweep; cycles capped to keep the
#: interpreter rows fast while still covering memories, selectors and I/O.
MACHINE_CYCLES = {
    "counter": 40,
    "fibonacci": 20,
    "gcd": 16,
    "traffic-light": 30,
    "stack-machine-sieve": 1200,
    "tiny-computer": 400,
    "fuzz-rom": 41,
    "fuzz-datapath": 9,
}


def observables(result):
    return (
        result.final_values,
        result.memory_contents,
        [(event.address, event.value) for event in result.outputs],
    )


def test_every_bundled_machine_is_covered():
    assert set(MACHINE_CYCLES) == {entry.name for entry in all_machines()}


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
@pytest.mark.parametrize("machine_name", sorted(MACHINE_CYCLES))
def test_batched_equals_sequential(machine_name, backend_name, executor):
    entry = get_machine(machine_name)
    spec = entry.build()
    cycles = MACHINE_CYCLES[machine_name]
    runs = [RunRequest(cycles=cycles) for _ in range(6)]

    prepared = make_backend(backend_name).prepare(spec)
    sequential = [
        observables(prepared.run(cycles=run.cycles, io=run.make_io()))
        for run in runs
    ]

    workers = 4 if executor == "thread" else 2
    with SimulationPool(spec, backend=backend_name, executor=executor,
                        max_workers=workers) as pool:
        batch = pool.run_batch(runs)

    assert batch.ok, [str(item.error) for item in batch.failures]
    batched = [observables(item.result) for item in batch.items]
    assert batched == sequential


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_varied_cycle_counts_stay_identical(backend_name):
    """Heterogeneous batches (different cycles per run) match one-by-one."""
    spec = get_machine("counter").build()
    runs = [RunRequest(cycles=cycles) for cycles in (1, 3, 8, 17, 40)]

    prepared = make_backend(backend_name).prepare(spec)
    sequential = [
        observables(prepared.run(cycles=run.cycles, io=run.make_io()))
        for run in runs
    ]
    with SimulationPool(spec, backend=backend_name, max_workers=3) as pool:
        batched = [observables(item.result) for item in pool.run_batch(runs)]
    assert batched == sequential


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_input_driven_runs_stay_identical(backend_name):
    """Runs consuming memory-mapped inputs get isolated I/O per run."""
    spec = get_machine("gcd").build()
    runs = [RunRequest(cycles=16, inputs=(i, i + 1)) for i in range(4)]

    prepared = make_backend(backend_name).prepare(spec)
    sequential = [
        observables(prepared.run(cycles=run.cycles, io=run.make_io()))
        for run in runs
    ]
    with SimulationPool(spec, backend=backend_name, max_workers=4) as pool:
        batched = [observables(item.result) for item in pool.run_batch(runs)]
    assert batched == sequential
