"""Tests for the execution strategies (serial / thread / process).

The process strategy is the interesting one: the lowered program is
pickled to worker processes once at pool startup, requests travel in
chunks, and per-item error capture must survive the process boundary —
including requests that cannot cross it at all (an unpicklable override).
"""

import threading

import pytest

from repro.compiler.cache import DiskCache, PrepareCache
from repro.compiler.compiled import CompiledBackend
from repro.compiler.threaded import ThreadedBackend
from repro.core.simulator import BACKEND_NAMES, make_backend
from repro.errors import ServingError, SimulationError
from repro.serving import (
    EXECUTOR_NAMES,
    BatchRequest,
    RunRequest,
    SimulationPool,
    WorkerContext,
    run_batch,
)
from repro.serving.executor import worker_context_for


def _observables(result):
    return (
        result.final_values,
        result.memory_contents,
        [(event.address, event.value) for event in result.outputs],
    )


def stuck_wrapped(name, value, cycle):
    """Module-level override (picklable by reference for process workers)."""
    return 0 if name == "wrapped" else value


class CustomCompiledBackend(CompiledBackend):
    """A third-party-style backend: ships to workers as a pickled instance."""


class TestStrategyEquivalence:
    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    @pytest.mark.parametrize("backend_name", BACKEND_NAMES)
    def test_every_strategy_matches_sequential(self, counter_spec,
                                               backend_name, executor):
        runs = [RunRequest(cycles=cycles) for cycles in (1, 4, 9, 16)]
        prepared = make_backend(backend_name).prepare(counter_spec)
        sequential = [
            _observables(prepared.run(cycles=run.cycles, io=run.make_io()))
            for run in runs
        ]
        with SimulationPool(counter_spec, backend=backend_name,
                            executor=executor, max_workers=2) as pool:
            batch = pool.run_batch(runs)
        assert batch.ok, [str(item.error) for item in batch.failures]
        assert [_observables(item.result) for item in batch.items] == sequential
        assert batch.executor == executor

    def test_unknown_executor_rejected(self, counter_spec):
        with pytest.raises(ServingError, match="unknown executor"):
            SimulationPool(counter_spec, executor="fiber")

    def test_nonpositive_chunk_size_rejected(self, counter_spec):
        with pytest.raises(ServingError, match="chunk_size"):
            SimulationPool(counter_spec, chunk_size=0)


class TestSerialStrategy:
    def test_single_worker_in_submission_order(self, counter_spec):
        with SimulationPool(counter_spec, executor="serial",
                            max_workers=5) as pool:
            batch = pool.run_batch([RunRequest(cycles=c) for c in (2, 5, 7)])
        assert batch.ok
        assert pool.max_workers == 1  # serial always runs one worker
        assert batch.runs_by_worker == {"serial-0": 3}
        assert [item.result.cycles_run for item in batch.items] == [2, 5, 7]

    def test_hook_may_submit_reentrantly(self, counter_spec):
        """Serial execution happens outside the submit lock, so a run
        hook that itself submits to the pool must not deadlock."""
        with SimulationPool(counter_spec, executor="serial") as pool:
            nested_cycles = []

            def nested(name, value, cycle):
                if cycle == 0 and name == "next" and not nested_cycles:
                    nested_cycles.append(
                        pool.run(RunRequest(cycles=1)).cycles_run
                    )
                return value

            result = pool.run(RunRequest(cycles=2, override=nested))
        assert result.cycles_run == 2
        assert nested_cycles == [1]

    def test_runs_on_the_calling_thread(self, counter_spec):
        seen = []

        def spy(name, value, cycle):
            seen.append(threading.get_ident())
            return value

        with SimulationPool(counter_spec, executor="serial") as pool:
            pool.run_batch([RunRequest(cycles=1, override=spy)])
        assert set(seen) == {threading.get_ident()}


class TestProcessStrategy:
    def test_workers_are_separate_processes(self, counter_spec):
        import os

        with SimulationPool(counter_spec, backend="compiled",
                            executor="process", max_workers=2,
                            chunk_size=1) as pool:
            batch = pool.run_batch([RunRequest(cycles=5)] * 8)
        assert batch.ok
        workers = set(batch.runs_by_worker)
        assert all(worker.startswith("pid-") for worker in workers)
        assert f"pid-{os.getpid()}" not in workers

    def test_chunk_size_bounds_scheduling(self, counter_spec):
        # one chunk spanning the whole batch: a single worker runs it all
        with SimulationPool(counter_spec, executor="process", max_workers=2,
                            chunk_size=8) as pool:
            batch = pool.run_batch([RunRequest(cycles=3)] * 8)
        assert batch.ok
        assert len(batch.runs_by_worker) == 1

    def test_per_item_error_capture_crosses_processes(self, counter_spec):
        runs = [RunRequest(cycles=5), RunRequest(cycles=-1),
                RunRequest(cycles=7)]
        with SimulationPool(counter_spec, executor="process", max_workers=2,
                            chunk_size=1) as pool:
            batch = pool.run_batch(runs)
        assert [item.ok for item in batch.items] == [True, False, True]
        assert isinstance(batch.failures[0].error, SimulationError)
        assert batch.items[2].result.cycles_run == 7

    def test_picklable_override_runs_in_workers(self, counter_spec):
        runs = [RunRequest(cycles=5, override=stuck_wrapped),
                RunRequest(cycles=5)]
        with SimulationPool(counter_spec, backend="compiled",
                            executor="process", max_workers=2) as pool:
            batch = pool.run_batch(runs)
        assert batch.ok, [str(item.error) for item in batch.failures]
        assert batch.items[0].result.value("count") == 0
        assert batch.items[1].result.value("count") == 5

    def test_unpicklable_request_poisons_only_its_chunk(self, counter_spec):
        runs = [RunRequest(cycles=5, override=lambda n, v, c: v),
                RunRequest(cycles=5)]
        with SimulationPool(counter_spec, executor="process", max_workers=2,
                            chunk_size=1) as pool:
            batch = pool.run_batch(runs)
        assert [item.ok for item in batch.items] == [False, True]
        assert batch.failures[0].worker is None  # never reached a worker

    def test_unpicklable_backend_rejected_eagerly(self, counter_spec):
        # a non-built-in backend must pickle; an instance attribute holding
        # a lambda defeats that, and the pool must say so at construction
        backend = CustomCompiledBackend(cache=False)
        backend.unpicklable = lambda: None
        with pytest.raises(ServingError, match="picklable"):
            SimulationPool(counter_spec, backend=backend, executor="process")

    def test_batch_request_form_and_module_level_run_batch(self, counter_spec):
        request = BatchRequest.repeat(counter_spec, 4, cycles=10,
                                      backend="compiled")
        batch = run_batch(request, max_workers=2, executor="process")
        assert batch.ok
        assert batch.executor == "process"
        assert batch.pool_size == 2

    def test_closed_process_pool_rejects_submissions(self, counter_spec):
        pool = SimulationPool(counter_spec, executor="process", max_workers=1)
        pool.close()
        with pytest.raises(ServingError):
            pool.run(RunRequest(cycles=1))

    def test_artifact_cache_can_be_disabled(self, counter_spec):
        with SimulationPool(counter_spec, backend="compiled",
                            executor="process", max_workers=1,
                            artifact_cache=False) as pool:
            batch = pool.run_batch([RunRequest(cycles=5)] * 2)
        assert batch.ok  # workers regenerate code instead of reading disk

    def test_artifact_cache_directory_is_seeded(self, counter_spec, tmp_path):
        disk = DiskCache(tmp_path)
        with SimulationPool(counter_spec, backend="compiled",
                            executor="process", max_workers=1,
                            artifact_cache=disk) as pool:
            batch = pool.run_batch([RunRequest(cycles=5)])
        assert batch.ok
        # the parent seeded both artifact kinds before any worker started
        assert list(tmp_path.glob("*.ir"))
        assert list(tmp_path.glob("*.py"))


class TestWorkerContext:
    """The worker bootstrap: bind a prepared simulation from the shipped
    program without re-lowering (the pool initializer runs this in every
    worker process; here it is exercised in-process for observability)."""

    def _context(self, spec, backend):
        warm = backend.prepare(spec)
        return worker_context_for(spec, backend, warm, None), warm

    @pytest.mark.parametrize("backend_name", BACKEND_NAMES)
    def test_builtin_backends_ship_by_name(self, counter_spec, backend_name):
        context, warm = self._context(counter_spec,
                                      make_backend(backend_name))
        assert context.backend is None
        assert context.backend_name == backend_name
        assert context.program is warm.program

    def test_bind_reuses_the_shipped_program(self, counter_spec):
        context, warm = self._context(counter_spec, ThreadedBackend())
        prepared = context.bind()
        # no re-lowering: the worker's prepare is a hit on the shipped IR
        assert prepared.program is context.program
        assert prepared.cache_hit

    def test_bind_interpreter_skips_lowering(self, counter_spec):
        context, warm = self._context(
            counter_spec, make_backend("interpreter")
        )
        prepared = context.bind()
        assert prepared.program is context.program
        assert prepared.prepare_seconds == 0.0

    def test_bound_simulation_matches_the_warm_one(self, counter_spec):
        context, warm = self._context(counter_spec, CompiledBackend())
        assert _observables(context.bind().run(cycles=10)) == _observables(
            warm.run(cycles=10)
        )

    def test_context_survives_pickling(self, counter_spec):
        import pickle

        context, _ = self._context(counter_spec, CompiledBackend())
        shipped = pickle.loads(pickle.dumps(context))
        result = shipped.bind().run(cycles=10)
        assert result.value("count") == 2

    def test_custom_picklable_backend_ships_as_instance(self, counter_spec):
        backend = CompiledBackend(cache=False)
        context, _ = self._context(counter_spec, backend)
        # exact built-in type ships by name; a subclass ships pickled
        assert context.backend_name == "compiled"

        custom = CustomCompiledBackend(cache=False)
        warm = custom.prepare(counter_spec)
        context = worker_context_for(counter_spec, custom, warm, None)
        assert context.backend is custom


class TestPerWorkerAggregates:
    def test_items_carry_worker_and_queue_wait(self, counter_spec):
        with SimulationPool(counter_spec, max_workers=2) as pool:
            batch = pool.run_batch([RunRequest(cycles=5)] * 6)
        assert batch.ok
        assert all(item.worker is not None for item in batch.items)
        assert all(item.queue_seconds >= 0.0 for item in batch.items)

    def test_per_worker_rates_cover_every_labelled_item(self, counter_spec):
        with SimulationPool(counter_spec, max_workers=3) as pool:
            batch = pool.run_batch([RunRequest(cycles=50)] * 9)
        rates = batch.per_worker_runs_per_second
        counts = batch.runs_by_worker
        assert set(rates) == set(counts)
        assert sum(counts.values()) == 9
        assert all(rate > 0.0 for rate in rates.values())

    def test_queue_stats_present_and_ordered(self, counter_spec):
        with SimulationPool(counter_spec, max_workers=1) as pool:
            batch = pool.run_batch([RunRequest(cycles=20)] * 4)
        assert batch.queue_seconds_max >= batch.queue_seconds_mean >= 0.0

    def test_empty_batch_degenerate_aggregates(self):
        from repro.serving import BatchResult

        empty = BatchResult(backend="threaded", pool_size=1)
        assert empty.per_worker_runs_per_second == {}
        assert empty.runs_by_worker == {}
        assert empty.queue_seconds_mean == 0.0
        assert empty.queue_seconds_max == 0.0


class TestAsyncOverStrategies:
    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_async_run_batch_on_every_strategy(self, counter_spec, executor):
        import asyncio

        from repro.serving import async_run_batch

        request = BatchRequest.repeat(counter_spec, 4, cycles=10)
        batch = asyncio.run(
            async_run_batch(request, max_workers=2, executor=executor)
        )
        assert batch.ok
        assert batch.executor == executor
