"""Chaos-injection harness for the fault-tolerant serving layer.

Each test injects one failure mode — a dying worker process, a run that
overshoots its deadline, a hard-hung worker, a backend whose prepare
explodes, a disk cache on failing storage, a saturated admission gate —
and asserts the same contract everywhere: the system answers with a
structured error or a degraded-but-correct result, it never hangs
(bounded by the deadline backstop) and never crashes, and requests that
succeed under chaos stay bit-identical to clean runs.

The ``test_smoke_*`` subset is the fast end-to-end slice wired into
``scripts/check.sh`` (``REPRO_CHAOS_SMOKE=1``); fault shims live in
:mod:`repro.serving.chaos` so they pickle into worker processes.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request

import pytest

from repro.core.comparison import compare_results
from repro.core.simulator import BACKEND_NAMES
from repro.errors import DeadlineExceededError, WorkerCrashError
from repro.serving import RunRequest, SimulationPool, SimulationServer
from repro.serving.chaos import HangOverride, KillWorker, SleepyOverride
from repro.serving.protocol import result_from_json

CYCLES = 8


def _close_killing_workers(pool: SimulationPool) -> None:
    """Close a process pool without waiting on possibly-hung workers.

    ``close(wait=False)`` abandons in-flight work but the interpreter
    still joins executor machinery at exit; a worker stuck in a long
    blocking call would stall the test session, so terminate what's left.
    """
    strategy = pool._strategy
    # snapshot before close: shutdown(wait=False) nulls the worker dict
    workers = getattr(getattr(strategy, "_processes", None), "_processes", None)
    workers = list((workers or {}).values())
    pool.close(wait=False)
    for process in workers:
        process.terminate()


def get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=30) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def post(server, path, body, headers=None):
    request = urllib.request.Request(
        server.url + path, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


class TestWorkerCrashRecovery:
    def test_smoke_poison_quarantined_innocents_bit_identical(
        self, counter_spec
    ):
        pool = SimulationPool(counter_spec, backend="interpreter",
                              executor="process", max_workers=2,
                              chunk_size=1)
        try:
            clean = pool.run_batch(
                [RunRequest(cycles=CYCLES, tag=f"clean-{i}")
                 for i in range(4)]
            )
            assert clean.ok, [str(item.error) for item in clean.failures]
            baseline = clean.items[0].result

            poison = RunRequest(
                cycles=CYCLES, tag="poison",
                override=KillWorker(spare_pid=os.getpid()),
            )
            runs = [RunRequest(cycles=CYCLES, tag="ok-0"), poison,
                    RunRequest(cycles=CYCLES, tag="ok-1"),
                    RunRequest(cycles=CYCLES, tag="ok-2"),
                    RunRequest(cycles=CYCLES, tag="ok-3")]
            batch = pool.run_batch(runs)

            # the poisoned request is quarantined as a structured error...
            poisoned = next(i for i in batch.items if i.tag == "poison")
            assert isinstance(poisoned.error, WorkerCrashError)
            assert "quarantined" in str(poisoned.error)
            assert batch.quarantined == 1
            assert batch.worker_crashes >= 1
            # ...and every innocent bystander survives, bit-identical
            for item in batch.items:
                if item.tag == "poison":
                    continue
                assert item.ok, f"{item.tag}: {item.error}"
                assert compare_results(baseline, item.result) == []

            # the respawned pool keeps serving
            again = pool.run_batch([RunRequest(cycles=CYCLES)])
            assert again.ok
            assert compare_results(baseline, again.items[0].result) == []
        finally:
            _close_killing_workers(pool)

    def test_crash_counters_reach_the_batch_result(self, counter_spec):
        pool = SimulationPool(counter_spec, backend="interpreter",
                              executor="process", max_workers=1,
                              chunk_size=1)
        try:
            batch = pool.run_batch([RunRequest(
                cycles=CYCLES,
                override=KillWorker(spare_pid=os.getpid()),
            )])
            assert not batch.ok
            assert batch.worker_crashes >= 1
            assert batch.worker_retries >= 1
            assert batch.quarantined == 1
            totals = pool.resilience_counters()
            assert totals["worker_crashes"] >= batch.worker_crashes
        finally:
            _close_killing_workers(pool)

    def test_kill_refuses_outside_process_executor(self, counter_spec):
        # the same shim on an in-process executor raises instead of
        # killing the test process; per-item capture keeps the batch alive
        with SimulationPool(counter_spec, backend="interpreter",
                            executor="serial") as pool:
            batch = pool.run_batch([
                RunRequest(cycles=CYCLES,
                           override=KillWorker(spare_pid=os.getpid())),
                RunRequest(cycles=CYCLES, tag="ok"),
            ])
        assert not batch.items[0].ok
        assert isinstance(batch.items[0].error, RuntimeError)
        assert batch.items[1].ok


class TestDeadlines:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_smoke_cooperative_deadline_interrupts_in_process(
        self, counter_spec, executor
    ):
        with SimulationPool(counter_spec, backend="interpreter",
                            executor=executor) as pool:
            start = time.monotonic()
            batch = pool.run_batch([RunRequest(
                cycles=10_000, timeout_seconds=0.2,
                override=SleepyOverride(seconds_per_call=0.005),
            )])
            elapsed = time.monotonic() - start
        item = batch.items[0]
        assert isinstance(item.error, DeadlineExceededError)
        assert isinstance(item.error, TimeoutError)  # satellite contract
        assert elapsed < 2.0, f"deadline not cooperative: {elapsed:.2f}s"
        assert batch.timeouts == [item]

    def test_deadline_alone_does_not_perturb_results(self, counter_spec):
        # a generous deadline forces the instrumented path; observables
        # must stay bit-identical to the undeadlined run
        with SimulationPool(counter_spec, backend="interpreter",
                            executor="serial") as pool:
            plain = pool.run(RunRequest(cycles=CYCLES))
            deadlined = pool.run(
                RunRequest(cycles=CYCLES, timeout_seconds=60.0)
            )
        assert compare_results(plain, deadlined) == []

    def test_expired_in_queue_is_shed_without_running(self, counter_spec):
        # serial executor, one chunk: the slow first request eats the
        # second one's whole budget while it waits
        with SimulationPool(counter_spec, backend="interpreter",
                            executor="serial", chunk_size=2) as pool:
            batch = pool.run_batch([
                RunRequest(cycles=100, tag="slow",
                           override=SleepyOverride(seconds_per_call=0.002)),
                RunRequest(cycles=CYCLES, tag="starved",
                           timeout_seconds=0.01),
            ])
        starved = batch.items[1]
        assert isinstance(starved.error, DeadlineExceededError)
        assert "shed" in str(starved.error)
        assert starved.seconds == 0.0  # never executed
        assert batch.items[0].ok

    def test_smoke_wall_clock_backstop_bounds_a_hung_worker(
        self, counter_spec
    ):
        # a worker stuck in one blocking call is invisible to the
        # cooperative check; the caller's wait must still be bounded at
        # WALL_CLOCK_DEADLINE_FACTOR x the deadline
        pool = SimulationPool(counter_spec, backend="interpreter",
                              executor="process", max_workers=1)
        try:
            start = time.monotonic()
            batch = pool.run_batch([RunRequest(
                cycles=CYCLES, timeout_seconds=0.5,
                override=HangOverride(sleep_seconds=30.0),
            )])
            elapsed = time.monotonic() - start
            item = batch.items[0]
            assert isinstance(item.error, DeadlineExceededError)
            assert "backstop" in str(item.error)
            assert elapsed < 2.5, f"hang leaked past backstop: {elapsed:.2f}s"
        finally:
            _close_killing_workers(pool)


class TestLaneFaultIsolation:
    """One bad lane must not poison its lane-group neighbours.

    The machine reads an address stream through ``inp``: any input >= 4
    is outside ``mem``'s declared range and raises ``MemoryRangeError``
    on cycle 1, so one request in the middle of a lane group faults while
    its siblings are healthy.
    """

    LANE_FAULT_SPEC = "# lane-fault\ninp mem .\nM inp 0 0 2 1\nM mem inp 0 0 4\n.\n"

    def _runs(self):
        return [
            RunRequest(cycles=4, inputs=(1,), trace=False, tag="ok-0"),
            RunRequest(cycles=4, inputs=(9,), trace=False, tag="boom"),
            RunRequest(cycles=4, inputs=(2,), trace=False, tag="ok-1"),
        ]

    @pytest.mark.parametrize("backend_name", BACKEND_NAMES)
    def test_smoke_lane_fault_is_per_item_siblings_bit_identical(
        self, backend_name
    ):
        from repro.errors import MemoryRangeError
        from repro.rtl.parser import parse_spec

        spec = parse_spec(self.LANE_FAULT_SPEC)
        with SimulationPool(spec, backend=backend_name,
                            executor="serial") as pool:
            reference = {
                item.tag: item
                for item in pool.run_batch(self._runs()).items
            }
        with SimulationPool(spec, backend=backend_name,
                            executor="lane") as pool:
            batch = pool.run_batch(self._runs())

        assert not batch.ok
        by_tag = {item.tag: item for item in batch.items}
        # the faulting lane is a structured per-item error, identical to
        # what the scalar path reports for the same run...
        assert isinstance(by_tag["boom"].error, MemoryRangeError)
        assert str(by_tag["boom"].error) == str(reference["boom"].error)
        # ...and the neighbouring lanes are bit-identical to scalar runs
        for tag in ("ok-0", "ok-1"):
            assert by_tag[tag].ok, f"{tag}: {by_tag[tag].error}"
            assert compare_results(
                reference[tag].result, by_tag[tag].result
            ) == []

    def test_deadline_in_a_lane_batch_falls_back_to_scalar(
        self, counter_spec
    ):
        # a deadlined request is not lane-eligible: it runs scalar inside
        # the same chunk with its deadline enforced, while the compatible
        # requests around it still ride a lane group and succeed
        with SimulationPool(counter_spec, backend="interpreter",
                            executor="lane") as pool:
            baseline = pool.run(RunRequest(cycles=CYCLES, trace=False))
            batch = pool.run_batch([
                RunRequest(cycles=CYCLES, trace=False, tag="lane-0"),
                RunRequest(cycles=10_000, timeout_seconds=0.2, tag="late",
                           override=SleepyOverride(seconds_per_call=0.005)),
                RunRequest(cycles=CYCLES, trace=False, tag="lane-1"),
            ])
        by_tag = {item.tag: item for item in batch.items}
        assert isinstance(by_tag["late"].error, DeadlineExceededError)
        assert batch.timeouts == [by_tag["late"]]
        for tag in ("lane-0", "lane-1"):
            assert by_tag[tag].ok, f"{tag}: {by_tag[tag].error}"
            assert compare_results(baseline, by_tag[tag].result) == []


class TestGracefulDegradation:
    def test_smoke_backend_fallback_over_http(self, monkeypatch):
        from repro.compiler.compiled import CompiledBackend
        from repro.machines.library import get_machine

        def broken_prepare(self, spec):
            raise RuntimeError("chaos: code generator is down")

        monkeypatch.setattr(CompiledBackend, "prepare", broken_prepare)
        with SimulationServer(port=0, artifact_cache=False) as server:
            status, document, _ = post(server, "/v1/batch", {
                "machine": "counter", "backend": "compiled",
                "runs": [{"cycles": CYCLES}],
            })
            assert status == 200, document
            assert document["ok"] is True
            degraded = document["degraded"]
            assert degraded["requested_backend"] == "compiled"
            assert degraded["served_backend"] == "threaded"
            assert "code generator is down" in degraded["reason"]

            # degraded-but-correct: bit-identical to a clean healthy run
            spec = get_machine("counter").build()
            with SimulationPool(spec, backend="threaded",
                                executor="serial") as pool:
                reference = pool.run(RunRequest(cycles=CYCLES))
            rebuilt = result_from_json(document["items"][0]["result"])
            assert compare_results(reference, rebuilt) == []

            # the substitution is sticky and visible in stats
            _, stats, _ = get(server, "/v1/stats")
            assert stats["resilience"]["backend_fallbacks"] == 1
            rows = [row for row in stats["pools"] if row["degraded"]]
            assert rows and rows[0]["degraded"]["served_backend"] == "threaded"

    def test_fallback_chain_exhausted_reports_first_error(self, monkeypatch,
                                                          counter_spec):
        from repro.interp.interpreter import InterpreterBackend
        from repro.serving.server import PoolRegistry
        from repro.serving.protocol import parse_batch_request

        def broken_prepare(self, spec):
            raise RuntimeError(f"chaos: {type(self).__name__} down")

        monkeypatch.setattr(InterpreterBackend, "prepare", broken_prepare)
        registry = PoolRegistry(artifact_cache=False)
        try:
            batch = parse_batch_request(
                {"machine": "counter", "backend": "interpreter",
                 "runs": [{"cycles": CYCLES}]},
                "interpreter", "serial",
            )
            with pytest.raises(RuntimeError, match="InterpreterBackend down"):
                registry.pool_for(batch)
        finally:
            registry.close_all()

    def test_smoke_disk_cache_degrades_to_memory_only(self, tmp_path,
                                                      counter_spec):
        from repro.compiler.cache import DiskCache

        blocker = tmp_path / "not-a-dir"
        blocker.write_text("a file where the cache root must go")
        cache = DiskCache(blocker / "cache")

        # the process pool seeds the artifact cache at startup; the
        # failing disk degrades it to memory-only instead of failing
        # pool construction
        with pytest.warns(RuntimeWarning, match="memory-only"):
            pool = SimulationPool(counter_spec, backend="threaded",
                                  executor="process", max_workers=1,
                                  artifact_cache=cache)
        try:
            batch = pool.run_batch([RunRequest(cycles=CYCLES)])
            assert batch.ok, [str(item.error) for item in batch.failures]
            result = batch.items[0].result
        finally:
            pool.close(wait=False)
        assert cache.degraded is True
        assert cache.write_errors >= 1
        # degraded to memory-only, but the answer is still correct
        with SimulationPool(counter_spec, backend="threaded",
                            executor="serial",
                            artifact_cache=False) as reference_pool:
            reference = reference_pool.run(RunRequest(cycles=CYCLES))
        assert compare_results(reference, result) == []


class TestBackpressure:
    def test_smoke_saturated_server_answers_429_and_readyz_not_ready(self):
        with SimulationServer(port=0, artifact_cache=False, max_inflight=1,
                              max_queue=0, retry_after=2.0) as server:
            # take the only slot, exactly as an in-flight request would
            server.gate.acquire()
            try:
                status, document, headers = post(server, "/v1/run", {
                    "machine": "counter", "cycles": CYCLES,
                })
                assert status == 429
                assert document["error"]["type"] == "overloaded"
                assert headers["Retry-After"] == "2"

                status, ready, _ = get(server, "/readyz")
                assert status == 503
                assert ready["ready"] is False
                assert ready["reason"] == "saturated"
                assert ready["admission"]["rejected"] >= 1

                # liveness is a different question: the process is fine
                status, _, _ = get(server, "/healthz")
                assert status == 200
            finally:
                server.gate.release()

            # slot freed: admission and readiness recover
            status, ready, _ = get(server, "/readyz")
            assert status == 200 and ready["ready"] is True
            status, document, _ = post(server, "/v1/run", {
                "machine": "counter", "cycles": CYCLES,
            })
            assert status == 200

    def test_queued_request_waits_for_a_slot_instead_of_429(self):
        with SimulationServer(port=0, artifact_cache=False, max_inflight=1,
                              max_queue=4) as server:
            server.gate.acquire()
            release = __import__("threading").Timer(
                0.2, server.gate.release
            )
            release.start()
            try:
                status, document, _ = post(server, "/v1/run", {
                    "machine": "counter", "cycles": CYCLES,
                })
            finally:
                release.join()
            assert status == 200
            assert document["result"]["cycles_run"] == CYCLES

    def test_readyz_reports_draining_after_close(self):
        server = SimulationServer(port=0, artifact_cache=False).start()
        # flip the draining flag the way close() does, while the
        # listener is still up (close() itself takes the listener down)
        server._closed = True
        try:
            status, ready, _ = get(server, "/readyz")
            assert status == 503
            assert ready["reason"] == "draining"
        finally:
            server._closed = False
            server.close()


class TestDeadlinesOverHttp:
    def test_smoke_deadline_is_a_structured_504(self):
        with SimulationServer(port=0, artifact_cache=False) as server:
            status, document, _ = post(
                server, "/v1/run",
                {"machine": "counter", "cycles": 50_000,
                 "timeout_seconds": 0.0005},
            )
            assert status == 504
            assert document["error"]["type"] == "deadline_exceeded"

    def test_header_default_applies_to_runs_without_their_own(self):
        with SimulationServer(port=0, artifact_cache=False) as server:
            status, document, _ = post(
                server, "/v1/batch",
                {"machine": "counter",
                 "runs": [{"cycles": 50_000},
                          {"cycles": CYCLES, "timeout_seconds": 60.0}]},
                headers={"X-Request-Timeout": "0.0005"},
            )
            assert status == 200
            assert document["ok"] is False
            first, second = document["items"]
            assert first["error"]["type"] == "deadline_exceeded"
            assert second["ok"] is True
            assert document["worker_crashes"] == 0

    def test_garbage_timeout_header_is_structured_400(self):
        with SimulationServer(port=0, artifact_cache=False) as server:
            for bad in ("soon", "-1", "0", "nan"):
                status, document, _ = post(
                    server, "/v1/run",
                    {"machine": "counter", "cycles": CYCLES},
                    headers={"X-Request-Timeout": bad},
                )
                assert status == 400, bad
                assert document["error"]["type"] == "invalid_timeout"


class TestFleetChaos:
    """Process-level chaos: with the fleet layer the harness can finally
    kill whole servers, not just pool workers, and the service must keep
    answering — bit-identically."""

    def test_kill_nine_mid_batch_fails_over_bit_identical(self, tmp_path):
        import threading

        from repro.machines.library import get_machine
        from repro.serving.chaos import await_condition, hard_kill
        from repro.serving.protocol import NODE_HEADER, RETRY_HEADER
        from repro.serving.router import ServingFleet

        heavy_cycles = 40_000
        runs = [
            {"cycles": heavy_cycles, "collect_stats": False, "tag": f"r{i}"}
            for i in range(3)
        ]
        with ServingFleet(nodes=2, quorum=1, health_interval=0.1,
                          start_timeout=90.0,
                          child_args=["--no-disk-cache"]) as fleet:
            # a cheap run with the same shard triple finds the home node
            status, _doc, headers = post(
                fleet, "/v1/run",
                {"machine": "counter", "cycles": 2, "backend": "interpreter",
                 "collect_stats": False},
            )
            assert status == 200
            home_id = headers[NODE_HEADER]
            home = fleet.supervisor.node(home_id)
            home_url, home_pid = home.url, home.pid
            (sibling_id,) = [
                node_id for node_id in fleet.supervisor.node_ids()
                if node_id != home_id
            ]

            outcome = {}

            def send_batch():
                outcome["response"] = post(fleet, "/v1/batch", {
                    "machine": "counter", "backend": "interpreter",
                    "runs": runs,
                })

            def batch_arrived() -> bool:
                try:
                    with urllib.request.urlopen(
                        home_url + "/v1/stats", timeout=5
                    ) as response:
                        stats = json.loads(response.read())
                except (OSError, ValueError):
                    return False
                return stats["requests"]["by_route"].get("/v1/batch", 0) >= 1

            client = threading.Thread(target=send_batch)
            client.start()
            # kill -9 the home node only once the batch is executing on it
            await_condition(batch_arrived, timeout=30,
                            message="batch arrival at the home node")
            hard_kill(home_pid)
            client.join(timeout=120)
            assert not client.is_alive()

            status, document, headers = outcome["response"]
            # the batch completed despite its server dying mid-run ...
            assert status == 200
            assert document["ok"] is True
            # ... on the sibling, with the crash attributed
            assert headers[NODE_HEADER] == sibling_id
            attribution = headers[RETRY_HEADER]
            assert attribution.startswith(home_id)

            # bit-identical to an in-process single-server run
            spec = get_machine("counter").build()
            with SimulationPool(spec, backend="interpreter",
                                executor="serial") as pool:
                reference = pool.run_batch([
                    RunRequest(cycles=heavy_cycles, collect_stats=False,
                               tag=f"r{i}")
                    for i in range(3)
                ])
            assert reference.ok
            for ref_item, wire in zip(reference.items, document["items"]):
                rebuilt = result_from_json(wire["result"])
                assert compare_results(ref_item.result, rebuilt) == []

            # and the supervisor restarted (or benched) the dead node
            def crash_handled() -> bool:
                snap = {
                    s["id"]: s for s in fleet.supervisor.describe()
                }[home_id]
                if snap["state"] == "benched":
                    return True
                return snap["state"] == "ready" and snap["restarts"] >= 1

            await_condition(crash_handled, timeout=30,
                            message="supervisor crash handling")
