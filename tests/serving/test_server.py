"""End-to-end tests for the long-lived HTTP simulation server.

A real ``SimulationServer`` is started on an ephemeral port and driven
with ``urllib`` — the same stack any external client uses.  The load-
bearing assertions: batches served over HTTP are bit-identical to
in-process ``SimulationPool`` runs on every backend; malformed and
unsupported requests come back as structured 4xx errors, never stack
traces; pools are created lazily and kept warm across requests; startup
prunes the disk cache; shutdown is graceful.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core.comparison import compare_results
from repro.core.simulator import BACKEND_NAMES
from repro.serving import RunRequest, SimulationPool, SimulationServer
from repro.serving.protocol import result_from_json


@pytest.fixture(scope="module")
def server():
    with SimulationServer(port=0, artifact_cache=False) as running:
        yield running


def get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post(server, path, body, raw: bytes | None = None):
    payload = raw if raw is not None else json.dumps(body).encode()
    request = urllib.request.Request(
        server.url + path, data=payload,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestPlumbing:
    def test_healthz(self, server):
        status, document = get(server, "/healthz")
        assert status == 200
        assert document["status"] == "ok"
        assert document["uptime_seconds"] >= 0.0

    def test_machines_lists_the_registry(self, server):
        from repro.machines.library import machine_names

        status, document = get(server, "/v1/machines")
        assert status == 200
        names = [entry["name"] for entry in document["machines"]]
        assert names == machine_names()

    def test_backends_report_capability_flags(self, server):
        status, document = get(server, "/v1/backends")
        assert status == 200
        rows = {row["name"]: row for row in document["backends"]}
        assert set(rows) == set(BACKEND_NAMES)
        for row in rows.values():
            assert isinstance(row["supports_override"], bool)
            assert isinstance(row["supports_full_stats"], bool)
        assert rows["threaded"]["prepare_cache"] is True
        assert rows["interpreter"]["prepare_cache"] is False

    def test_backends_advertise_supported_executors(self, server):
        from repro.serving import EXECUTOR_NAMES

        status, document = get(server, "/v1/backends")
        assert status == 200
        for row in document["backends"]:
            # every backend serves every strategy — backends without a
            # generated lane entry point use the generic lane evaluator
            assert row["executors"] == list(EXECUTOR_NAMES)
            assert "lane" in row["executors"]

    def test_unknown_route_is_structured_404(self, server):
        status, document = get(server, "/v1/nope")
        assert status == 404
        assert document["error"]["type"] == "unknown_route"

    def test_wrong_method_is_405(self, server):
        status, document = get(server, "/v1/run")
        assert status == 405
        assert document["error"]["type"] == "method_not_allowed"

    def test_trailing_slash_is_tolerated(self, server):
        status, _ = get(server, "/healthz/")
        assert status == 200


class TestErrors:
    def test_malformed_json_is_structured_400(self, server):
        status, document = post(server, "/v1/run", None,
                                raw=b"{not json at all")
        assert status == 400
        assert document["error"]["type"] == "malformed_json"
        assert "JSON" in document["error"]["message"]

    def test_unknown_field_is_rejected(self, server):
        status, document = post(server, "/v1/run",
                                {"machine": "counter", "cylces": 5})
        assert status == 400
        assert "cylces" in document["error"]["message"]

    def test_unknown_machine_is_404(self, server):
        status, document = post(server, "/v1/run", {"machine": "warp-core"})
        assert status == 404
        assert document["error"]["type"] == "unknown_machine"

    def test_unknown_backend_is_structured(self, server):
        status, document = post(
            server, "/v1/batch",
            {"machine": "counter", "backend": "quantum", "runs": [{}]},
        )
        assert status == 400
        assert document["error"]["type"] == "unknown_backend"

    def test_invalid_spec_text_is_structured(self, server):
        status, document = post(
            server, "/v1/run", {"spec": "# x\ngarbage line\n.\n"}
        )
        assert status == 400
        assert document["error"]["type"] == "invalid_specification"

    def test_malformed_json_spec_document_is_structured(self, server):
        status, document = post(
            server, "/v1/run", {"spec": {"format": "not-a-spec"}}
        )
        assert status == 400
        assert document["error"]["type"] == "invalid_spec"
        assert "$.format" in document["error"]["message"]

    def test_invalid_json_spec_document_is_structured(self, server):
        # well-formed wrapper, semantically broken machine (dangling ref)
        status, document = post(server, "/v1/run", {"spec": {
            "format": "repro-spec", "version": 1,
            "components": [{"type": "memory", "name": "r", "address": 0,
                            "data": "ghost", "operation": 1, "size": 1}],
        }})
        assert status == 400
        assert document["error"]["type"] == "invalid_spec"
        assert "ghost" in document["error"]["message"]

    def test_oversized_json_spec_document_is_structured(self, server):
        from repro.rtl.interchange import MAX_COMPONENTS

        status, document = post(server, "/v1/run", {"spec": {
            "format": "repro-spec", "version": 1,
            "components": [
                {"type": "alu", "name": f"a{i}", "function": 0,
                 "left": 0, "right": 0}
                for i in range(MAX_COMPONENTS + 1)
            ],
        }})
        assert status == 400
        assert document["error"]["type"] == "invalid_spec"

    def test_unsupported_capability_is_422(self, server, monkeypatch):
        # a backend whose prepared simulations cannot honor `override`:
        # flip the capability flag and ask for an override over the wire
        from repro.interp.interpreter import InterpreterBackend, \
            InterpreterSimulation

        monkeypatch.setattr(InterpreterBackend, "supports_override", False)
        monkeypatch.setattr(InterpreterSimulation, "supports_override", False)
        status, document = post(server, "/v1/run", {
            "machine": "fibonacci", "backend": "interpreter",
            "executor": "serial", "cycles": 4, "override": {"a": 1},
        })
        assert status == 422
        assert document["error"]["type"] == "unsupported_capability"

    def test_negative_content_length_is_structured_4xx(self, server):
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port,
                                                timeout=30)
        try:
            connection.putrequest("POST", "/v1/run")
            connection.putheader("Content-Length", "-5")
            connection.endheaders()
            response = connection.getresponse()
            document = json.loads(response.read())
            assert response.status == 411
            assert document["error"]["type"] == "length_required"
        finally:
            connection.close()

    def test_keep_alive_survives_an_unread_body_error(self, server):
        # a POST to a GET-only route answers 405 without reading the
        # body; the connection must stay usable (or be closed cleanly),
        # never serve the leftover body bytes as the next request
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port,
                                                timeout=30)
        try:
            body = json.dumps({"x": 1}).encode()
            connection.request("POST", "/healthz", body=body)
            response = connection.getresponse()
            assert response.status == 405
            response.read()
            connection.request("GET", "/healthz")
            follow_up = connection.getresponse()
            assert follow_up.status == 200
            assert json.loads(follow_up.read())["status"] == "ok"
        finally:
            connection.close()

    def test_simulation_error_is_structured_400(self, server):
        # cycles < 0 blows up inside the run; the server reports the
        # exception class, not a stack trace
        status, document = post(server, "/v1/run",
                                {"machine": "counter", "cycles": -3})
        assert status == 400
        assert "error" in document


class TestServing:
    def test_single_run_over_http(self, server):
        status, document = post(server, "/v1/run", {
            "machine": "counter", "cycles": 24, "backend": "interpreter",
        })
        assert status == 200
        result = document["result"]
        assert result["cycles_run"] == 24
        assert result["backend"] == "interpreter"
        assert result["stats"]["cycles"] == 24

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_http_batch_bit_identical_to_in_process_pool(self, server,
                                                         backend):
        from repro.machines.library import get_machine

        runs = [{"cycles": cycles, "tag": f"c{cycles}"}
                for cycles in (8, 16, 24)]
        status, document = post(server, "/v1/batch", {
            "machine": "gcd", "backend": backend, "runs": runs,
        })
        assert status == 200
        assert document["ok"] is True
        assert document["backend"] == backend

        spec = get_machine("gcd").build()
        with SimulationPool(spec, backend=backend) as pool:
            reference = pool.run_batch(
                [RunRequest(cycles=cycles, tag=f"c{cycles}")
                 for cycles in (8, 16, 24)]
            )
        for item, wire_item in zip(reference.items, document["items"]):
            assert wire_item["tag"] == item.tag
            rebuilt = result_from_json(wire_item["result"])
            assert compare_results(item.result, rebuilt) == []

    def test_inline_spec_over_http(self, server, counter_spec_text,
                                   counter_spec):
        status, document = post(server, "/v1/run", {
            "spec": counter_spec_text, "cycles": 12, "backend": "threaded",
        })
        assert status == 200
        from repro.core.simulator import Simulator

        reference = Simulator(counter_spec, backend="threaded").run(cycles=12)
        rebuilt = result_from_json(document["result"])
        assert compare_results(reference, rebuilt) == []

    def test_json_spec_over_http_bit_identical_to_in_process(
            self, server, counter_spec):
        from repro.rtl.interchange import spec_to_json

        status, document = post(server, "/v1/run", {
            "spec": spec_to_json(counter_spec), "cycles": 12,
            "backend": "threaded",
        })
        assert status == 200
        with SimulationPool(counter_spec, backend="threaded") as pool:
            [reference] = pool.run_batch([RunRequest(cycles=12)])
        rebuilt = result_from_json(document["result"])
        assert compare_results(reference.result, rebuilt) == []

    def test_override_over_the_wire_matches_in_process(self, server):
        from repro.machines.library import get_machine
        from repro.serving.protocol import ConstantOverride

        status, document = post(server, "/v1/run", {
            "machine": "counter", "cycles": 10, "backend": "interpreter",
            "override": {"count": 2},
        })
        assert status == 200
        spec = get_machine("counter").build()
        with SimulationPool(spec, backend="interpreter") as pool:
            reference = pool.run(RunRequest(
                cycles=10,
                override=ConstantOverride(values=(("count", 2),)),
            ))
        rebuilt = result_from_json(document["result"])
        assert compare_results(reference, rebuilt) == []

    def test_process_executor_over_http(self, server):
        # the deepest path: JSON -> ParsedBatch -> process pool (the run
        # requests, ConstantOverride included, pickle to worker
        # processes) -> RunOutcome -> JSON
        from repro.machines.library import get_machine
        from repro.serving.protocol import ConstantOverride

        status, document = post(server, "/v1/batch", {
            "machine": "counter", "backend": "threaded",
            "executor": "process",
            "runs": [{"cycles": 12}, {"cycles": 12, "override": {"count": 1}}],
        })
        assert status == 200
        assert document["ok"] is True
        assert document["executor"] == "process"
        assert all(item["worker"].startswith("pid-")
                   for item in document["items"])
        spec = get_machine("counter").build()
        with SimulationPool(spec, backend="threaded",
                            executor="serial") as pool:
            plain = pool.run(RunRequest(cycles=12))
            pinned = pool.run(RunRequest(
                cycles=12, override=ConstantOverride(values=(("count", 1),))
            ))
        for reference, wire_item in zip((plain, pinned), document["items"]):
            rebuilt = result_from_json(wire_item["result"])
            assert compare_results(reference, rebuilt) == []

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_lane_executor_over_http_bit_identical(self, server, backend):
        # wire -> ParsedBatch(lane_width) -> lane-grouped pool, checked
        # against a serial in-process pool on the same requests
        from repro.machines.library import get_machine

        runs = [{"cycles": 24, "trace": False} for _ in range(5)]
        status, document = post(server, "/v1/batch", {
            "machine": "counter", "backend": backend, "executor": "lane",
            "lane_width": 4, "runs": runs,
        })
        assert status == 200
        assert document["ok"] is True
        assert document["executor"] == "lane"

        spec = get_machine("counter").build()
        with SimulationPool(spec, backend=backend,
                            executor="serial") as pool:
            reference = pool.run_batch(
                [RunRequest(cycles=24, trace=False) for _ in range(5)]
            )
        for item, wire_item in zip(reference.items, document["items"]):
            rebuilt = result_from_json(wire_item["result"])
            assert compare_results(item.result, rebuilt) == []

    @pytest.mark.parametrize("bad_width", [0, -3, True, "wide"])
    def test_invalid_lane_width_is_structured_400(self, server, bad_width):
        status, document = post(server, "/v1/batch", {
            "machine": "counter", "executor": "lane",
            "lane_width": bad_width, "runs": [{"cycles": 4}],
        })
        assert status == 400
        assert "lane_width" in document["error"]["message"]

    def test_stats_report_the_lane_width_default(self, server):
        status, document = get(server, "/v1/stats")
        assert status == 200
        assert "lane_width" in document["config"]

    def test_per_item_errors_do_not_kill_the_batch(self, server):
        status, document = post(server, "/v1/batch", {
            "machine": "counter", "backend": "interpreter",
            "runs": [{"cycles": 4}, {"cycles": -1}, {"cycles": 4}],
        })
        assert status == 200
        assert document["ok"] is False
        oks = [item["ok"] for item in document["items"]]
        assert oks == [True, False, True]
        assert document["items"][1]["error"]["message"]

    def test_pools_are_lazy_and_kept_warm(self, server):
        before = {(row["machine"], row["backend"])
                  for row in get(server, "/v1/stats")[1]["pools"]}
        assert ("traffic-light", "threaded") not in before
        for _ in range(2):
            status, _ = post(server, "/v1/run", {
                "machine": "traffic-light", "cycles": 6,
                "backend": "threaded",
            })
            assert status == 200
        pools = get(server, "/v1/stats")[1]["pools"]
        matching = [row for row in pools
                    if (row["machine"], row["backend"])
                    == ("traffic-light", "threaded")]
        assert len(matching) == 1  # one pool, reused — not one per request

    def test_stats_counts_requests(self, server):
        first = get(server, "/v1/stats")[1]["requests"]["total"]
        get(server, "/healthz")
        second = get(server, "/v1/stats")[1]["requests"]["total"]
        assert second >= first + 2  # healthz + the stats call itself


class TestRobustness:
    def test_configurable_body_limit_answers_413(self):
        with SimulationServer(port=0, artifact_cache=False,
                              max_body_bytes=512) as small:
            status, document = post(small, "/v1/run", {
                "machine": "counter", "cycles": 4, "tag": "x" * 2048,
            })
            assert status == 413
            assert document["error"]["type"] == "body_too_large"
            assert "512" in document["error"]["message"]
            # an in-budget request on the same server still serves
            status, _ = post(small, "/v1/run",
                             {"machine": "counter", "cycles": 4})
            assert status == 200

    def test_body_limit_must_be_positive(self):
        with pytest.raises(ValueError, match="max_body_bytes"):
            SimulationServer(port=0, artifact_cache=False, max_body_bytes=0)

    def test_close_reports_a_clean_drain(self):
        server = SimulationServer(port=0, artifact_cache=False,
                                  drain_timeout=5.0).start()
        assert get(server, "/healthz")[0] == 200
        assert server.close() is True
        assert server.drain_failed is False

    def test_drain_timeout_must_be_non_negative(self):
        with pytest.raises(ValueError, match="drain_timeout"):
            SimulationServer(port=0, artifact_cache=False, drain_timeout=-1.0)

    def test_unpicklable_override_is_per_item_error_not_500(self, server,
                                                            monkeypatch):
        # the full wire -> pool -> process-executor path with a request
        # that cannot cross the process boundary: the pickling failure
        # must come back as that item's structured error, the innocent
        # item must run, and the server must stay up
        from repro.serving import protocol

        monkeypatch.setattr(
            protocol, "ConstantOverride",
            lambda values: (lambda name, value, cycle: value),
        )
        status, document = post(server, "/v1/batch", {
            "machine": "counter", "backend": "threaded",
            "executor": "process",
            "runs": [{"cycles": 8, "override": {"count": 1},
                      "tag": "poisoned"},
                     {"cycles": 8, "tag": "fine"}],
        })
        assert status == 200
        assert document["ok"] is False
        poisoned, fine = document["items"]
        assert poisoned["ok"] is False
        assert poisoned["error"]["message"]
        assert fine["ok"] is True
        assert get(server, "/healthz")[0] == 200


class TestLifecycle:
    def test_startup_prune_bounds_the_cache_dir(self, tmp_path):
        from repro.compiler.cache import DiskCache

        cache = DiskCache(tmp_path)
        for index in range(6):
            cache.store_source("f" * 8, f"k{index}", "x = 1\n" * 50)
        budget = 2 * (tmp_path / "ffffffff-k0.py").stat().st_size
        server = SimulationServer(port=0, artifact_cache=cache,
                                  cache_max_bytes=budget)
        try:
            assert server.startup_prune is not None
            assert server.startup_prune.removed_evicted == 4
            assert cache.info().total_bytes <= budget
        finally:
            server.close()

    def test_stats_reports_the_disk_cache(self, tmp_path):
        with SimulationServer(port=0, artifact_cache=tmp_path) as running:
            status, document = get(running, "/v1/stats")
        assert status == 200
        assert document["disk_cache"]["root"] == str(tmp_path)

    def test_close_is_idempotent_and_graceful(self):
        server = SimulationServer(port=0, artifact_cache=False).start()
        status, _ = get(server, "/healthz")
        assert status == 200
        server.close()
        server.close()  # second close is a no-op
        with pytest.raises(urllib.error.URLError):
            get(server, "/healthz")

    def test_close_without_start_does_not_hang(self):
        server = SimulationServer(port=0, artifact_cache=False)
        server.close()  # never served: must not deadlock on shutdown()


class TestPoolEviction:
    """The ``max_pools`` LRU cap: a server fed unbounded distinct
    combinations drains and evicts its least-recently-used pool instead
    of growing without bound."""

    def test_registry_evicts_lru_beyond_the_cap(self):
        from repro.serving.protocol import parse_batch_request
        from repro.serving.server import PoolRegistry

        registry = PoolRegistry(artifact_cache=False, max_pools=2)

        def batch_for(machine):
            return parse_batch_request(
                {"machine": machine, "runs": [{"cycles": 4}]},
                "interpreter", "serial",
            )

        counter_pool, _ = registry.pool_for(batch_for("counter"))
        gcd_pool, _ = registry.pool_for(batch_for("gcd"))
        assert len(registry) == 2
        # touch counter: gcd becomes least-recently-used
        touched, _ = registry.pool_for(batch_for("counter"))
        assert touched is counter_pool
        third_pool, _ = registry.pool_for(batch_for("traffic-light"))
        assert len(registry) == 2
        assert registry.eviction_count == 1
        assert gcd_pool.closed is True      # drained, not abandoned
        assert counter_pool.closed is False  # the touch saved it
        # the evicted combination is rebuilt on demand (a fresh pool)
        rebuilt, _ = registry.pool_for(batch_for("gcd"))
        assert rebuilt is not gcd_pool
        assert registry.eviction_count == 2
        registry.close_all()
        assert third_pool.closed

    def test_eviction_counter_in_resilience_totals(self):
        from repro.serving.server import PoolRegistry

        registry = PoolRegistry(artifact_cache=False, max_pools=1)
        assert registry.resilience_totals()["pool_evictions"] == 0
        registry.close_all()

    def test_max_pools_must_be_positive(self):
        from repro.serving.server import PoolRegistry

        with pytest.raises(ValueError):
            PoolRegistry(max_pools=0)

    def test_eviction_over_http_stays_correct(self):
        with SimulationServer(port=0, artifact_cache=False,
                              backend="interpreter",
                              max_pools=1) as server:
            for machine in ("counter", "gcd", "counter"):
                status, document = post(
                    server, "/v1/run", {"machine": machine, "cycles": 8}
                )
                assert status == 200, document
                assert document["result"]["cycles_run"] == 8
            status, stats = get(server, "/v1/stats")
            assert status == 200
            assert stats["config"]["max_pools"] == 1
            assert stats["resilience"]["pool_evictions"] == 2
            assert len(stats["pools"]) == 1


class TestSignalDrain:
    """SIGTERM must run the same graceful drain as Ctrl-C — the fleet's
    rolling restarts depend on it.  Driven through a real subprocess,
    exactly as a supervisor would."""

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        from pathlib import Path

        import repro
        from repro.serving.chaos import await_condition

        port_file = tmp_path / "port"
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--port-file", str(port_file), "--no-disk-cache"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            await_condition(
                lambda: port_file.exists() and port_file.read_text().strip(),
                timeout=30, message="port file",
            )
            port = int(port_file.read_text().strip())
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=10
            ) as response:
                assert response.status == 200
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "shutting down (draining in-flight runs)" in output
        assert "abandoned" not in output  # the drain finished in budget
