"""Unit tests for the batch request/result data model."""

import pytest

from repro.core.iosystem import QueueIO
from repro.errors import SimulationError
from repro.serving import BatchItem, BatchRequest, BatchResult, RunRequest


class TestRunRequest:
    def test_inputs_coerced_to_tuple(self):
        request = RunRequest(inputs=[1, 2, "a"])
        assert request.inputs == (1, 2, "a")

    def test_make_io_defaults_to_non_strict_queue(self):
        io = RunRequest(inputs=(5, 6)).make_io()
        assert isinstance(io, QueueIO)
        assert io.read(1) == 5
        assert io.read(1) == 6
        assert io.read(1) == 0  # non-strict: exhausted queue reads zero

    def test_make_io_builds_a_fresh_system_per_call(self):
        request = RunRequest(inputs=(9,))
        assert request.make_io() is not request.make_io()

    def test_io_factory_wins_over_inputs(self):
        custom = QueueIO([42])
        request = RunRequest(inputs=(1,), io_factory=lambda: custom)
        assert request.make_io() is custom


class TestBatchRequest:
    def test_repeat_builds_identical_runs(self, counter_spec):
        request = BatchRequest.repeat(counter_spec, 5, cycles=10, inputs=(1,))
        assert len(request) == 5
        assert all(run.cycles == 10 for run in request.runs)
        assert all(run.inputs == (1,) for run in request.runs)

    def test_repeat_rejects_negative_count(self, counter_spec):
        with pytest.raises(ValueError):
            BatchRequest.repeat(counter_spec, -1)

    def test_sweep_builds_one_run_per_input_set(self, counter_spec):
        request = BatchRequest.sweep(
            counter_spec, [(1, 2), (3,), ()], cycles=4
        )
        assert [run.inputs for run in request.runs] == [(1, 2), (3,), ()]
        assert all(run.cycles == 4 for run in request.runs)


class TestBatchResult:
    def _items(self):
        ok = BatchItem(index=0, request=RunRequest(tag="good"),
                       result=object(), seconds=0.25)
        bad = BatchItem(index=1, request=RunRequest(tag="bad"),
                        error=SimulationError("boom"))
        return [ok, bad]

    def test_partition_and_flags(self):
        result = BatchResult(backend="threaded", pool_size=2,
                             items=self._items(), wall_seconds=0.5)
        assert len(result) == 2
        assert not result.ok
        assert len(result.results) == 1
        assert [item.tag for item in result.failures] == ["bad"]

    def test_raise_for_errors_reraises_first_failure(self):
        result = BatchResult(backend="threaded", pool_size=2,
                             items=self._items(), wall_seconds=0.5)
        with pytest.raises(SimulationError, match="boom"):
            result.raise_for_errors()

    def test_raise_for_errors_noop_when_clean(self):
        result = BatchResult(backend="threaded", pool_size=1,
                             items=[self._items()[0]], wall_seconds=0.5)
        result.raise_for_errors()

    def test_runs_per_second(self):
        result = BatchResult(backend="threaded", pool_size=2,
                             items=self._items(), wall_seconds=0.5)
        assert result.runs_per_second == pytest.approx(4.0)

    def test_runs_per_second_degenerate_wall(self):
        empty = BatchResult(backend="threaded", pool_size=1, items=[],
                            wall_seconds=0.0)
        assert empty.runs_per_second == 0.0

    def test_summary_mentions_counts_pool_and_executor(self):
        result = BatchResult(backend="compiled", pool_size=4,
                             items=self._items(), wall_seconds=0.5,
                             executor="process")
        summary = result.summary()
        assert "compiled" in summary
        assert "1/2" in summary
        assert "4 process workers" in summary
