"""Unit tests for the threaded-code backend (closures over pre-bound locals)."""

import pytest

from repro.compiler.specopt import SpecOptPasses
from repro.compiler.threaded import ThreadedBackend, thread_spec
from repro.core.iosystem import QueueIO
from repro.core.trace import TraceOptions
from repro.errors import (
    InvalidAluFunctionError,
    MemoryRangeError,
    SelectorRangeError,
)
from repro.interp.interpreter import InterpreterBackend
from repro.rtl.parser import parse_spec


@pytest.fixture
def backend():
    return ThreadedBackend(cache=False)


class TestPrepare:
    def test_prepare_builds_program(self, backend, counter_spec):
        prepared = backend.prepare(counter_spec)
        assert prepared.backend_name == "threaded"
        assert prepared.prepare_seconds >= 0
        assert prepared.program.value_count >= len(counter_spec.components)

    def test_thread_spec_helper(self, counter_spec):
        assert thread_spec(counter_spec).spec is counter_spec

    def test_prepared_simulation_is_reusable(self, backend, counter_spec):
        prepared = backend.prepare(counter_spec)
        first = prepared.run(cycles=6)
        second = prepared.run(cycles=6)
        assert first.final_values == second.final_values
        assert first.memory_contents == second.memory_contents


class TestRun:
    def test_counter_behaviour(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=10)
        assert result.backend == "threaded"
        assert result.value("count") == 2
        assert result.output_integers() == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]
        assert result.memory("count") == [2]

    def test_zero_cycles(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=0)
        assert result.cycles_run == 0
        assert all(value == 0 for value in result.final_values.values())

    def test_inputs(self, backend):
        spec = parse_spec("# io\nacc inport .\nA acc 4 inport 0\nM inport 1 0 2 2\n.")
        result = backend.run(spec, cycles=3, io=QueueIO([10, 20, 30]))
        assert result.value("inport") == 30

    def test_trace_collection(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=5, trace=True)
        assert result.trace.values_of("count") == [0, 1, 2, 3, 4]

    def test_trace_limit_respected(self, backend, counter_spec):
        result = backend.run(
            counter_spec,
            cycles=9,
            trace=TraceOptions(trace_cycles=True, limit=3),
        )
        assert len(result.trace.cycles) == 3

    def test_stats(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=9)
        assert result.stats.cycles == 9
        assert result.stats.component_evaluations == 9 * 4
        assert result.stats.memory("count").writes == 9

    def test_stats_disabled(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=4, collect_stats=False)
        assert result.stats.cycles == 0


class TestInterpreterOnlyFeatures:
    """The features the compiled backend rejects must work on threaded code."""

    def test_override_hook_runs_per_component(self, backend, counter_spec):
        seen = set()

        def override(name, value, cycle):
            seen.add(name)
            return value

        backend.run(counter_spec, cycles=2, override=override)
        assert seen == {"next", "wrapped", "count", "outport"}

    def test_override_matches_interpreter_exactly(self, counter_spec):
        def stuck_bit(name, value, cycle):
            return value | 4 if name == "next" else value

        reference = InterpreterBackend().run(
            counter_spec, cycles=12, override=stuck_bit
        )
        for specopt in (False, True):
            candidate = ThreadedBackend(specopt=specopt, cache=False).run(
                counter_spec, cycles=12, override=stuck_bit
            )
            assert candidate.final_values == reference.final_values
            assert candidate.memory_contents == reference.memory_contents
            assert candidate.output_integers() == reference.output_integers()

    def test_trace_records_raw_override_values(self, counter_spec):
        # state.lookup returns the raw stored value, so an out-of-word
        # override value must appear unmasked in both backends' traces
        def huge(name, value, cycle):
            return 2 ** 40 if name == "count" else value

        reference = InterpreterBackend().run(
            counter_spec, cycles=3, trace=True, override=huge
        )
        candidate = ThreadedBackend(cache=False).run(
            counter_spec, cycles=3, trace=True, override=huge
        )
        assert [t.values for t in candidate.trace.cycles] == [
            t.values for t in reference.trace.cycles
        ]
        assert candidate.trace.values_of("count")[-1] == 2 ** 40

    def test_memory_access_trace_matches_interpreter(self):
        spec = parse_spec(
            "# traced ram\nr addr .\nM r addr 7 13 4\nM addr 0 1 1 1\n."
        )
        reference = InterpreterBackend().run(spec, cycles=4, trace=True)
        candidate = ThreadedBackend(cache=False).run(spec, cycles=4, trace=True)
        key = lambda a: (a.cycle, a.memory, a.kind, a.address, a.value)
        assert list(map(key, candidate.trace.accesses)) == list(
            map(key, reference.trace.accesses)
        )
        assert len(candidate.trace.accesses) > 0


class TestRuntimeErrors:
    def test_selector_out_of_range(self, backend):
        spec = parse_spec("# bad\ns r .\nS s r 1 2\nM r 0 5 1 1\n.")
        with pytest.raises(SelectorRangeError):
            backend.run(spec, cycles=3)

    def test_memory_address_out_of_range(self, backend):
        spec = parse_spec("# bad\nm r .\nM m r 0 0 4\nM r 0 9 1 1\n.")
        with pytest.raises(MemoryRangeError):
            backend.run(spec, cycles=3)

    def test_invalid_alu_function_code(self, backend):
        # the function expression reads a register that reaches 14 (> max 13)
        spec = parse_spec(
            "# bad funct\na inc r .\nA a r 1 1\nA inc 4 r 1\nM r 0 inc 1 1\n.",
            validate=False,
        )
        with pytest.raises(InvalidAluFunctionError):
            backend.run(spec, cycles=20)

    def test_error_carries_cycle_number(self, backend):
        spec = parse_spec("# bad\nm r .\nM m r 0 0 4\nM r 0 9 1 1\n.")
        with pytest.raises(MemoryRangeError) as excinfo:
            backend.run(spec, cycles=5)
        assert excinfo.value.cycle is not None


class TestSpecOptIntegration:
    CONSTANT_HEAVY = """\
# constants everywhere
base scaled twin result r .
A base 4 10 20
A scaled 7 base 2
A twin 4 r 1
A result 4 r 1
M r 0 result 1 1
.
"""

    def test_specopt_shrinks_program(self):
        spec = parse_spec(self.CONSTANT_HEAVY)
        plain = ThreadedBackend(specopt=False, cache=False).prepare(spec)
        optimized = ThreadedBackend(specopt=True, cache=False).prepare(spec)
        assert len(optimized.program.ordered) < len(plain.program.ordered)
        assert optimized.optimization is not None
        assert optimized.optimization.changed

    def test_specopt_preserves_observables(self):
        spec = parse_spec(self.CONSTANT_HEAVY)
        reference = InterpreterBackend().run(spec, cycles=8)
        optimized = ThreadedBackend(
            specopt=SpecOptPasses(), cache=False
        ).run(spec, cycles=8)
        assert optimized.final_values == reference.final_values
        assert optimized.memory_contents == reference.memory_contents

    def test_tracing_an_optimized_away_component_matches_interpreter(self):
        # 'base' and 'scaled' are eliminated by specopt; a run-time trace
        # request for them must still see their per-cycle values
        spec = parse_spec(self.CONSTANT_HEAVY)
        options = TraceOptions(trace_cycles=True, names=("base", "twin"))
        reference = InterpreterBackend().run(spec, cycles=4, trace=options)
        candidate = ThreadedBackend(specopt=True, cache=False).run(
            spec, cycles=4, trace=options
        )
        assert [t.values for t in candidate.trace.cycles] == [
            t.values for t in reference.trace.cycles
        ]
        assert candidate.trace.values_of("base") == [30, 30, 30, 30]

    def test_tracing_an_unknown_component_fails_like_interpreter(self):
        from repro.errors import UnknownComponentError

        spec = parse_spec(self.CONSTANT_HEAVY)
        options = TraceOptions(trace_cycles=True, names=("nosuch",))
        with pytest.raises(UnknownComponentError):
            InterpreterBackend().run(spec, cycles=2, trace=options)
        with pytest.raises(UnknownComponentError):
            ThreadedBackend(cache=False).run(spec, cycles=2, trace=options)
