"""Unit tests for the spec-level optimization pipeline."""

import pytest

from repro.compiler.compiled import CompiledBackend
from repro.compiler.specopt import (
    SpecOptPasses,
    optimize_spec,
    resolve_passes,
    restore_observables,
)
from repro.compiler.threaded import ThreadedBackend
from repro.interp.interpreter import InterpreterBackend
from repro.rtl.parser import parse_spec

CONSTANT_CHAIN = """\
# constant chain
five ten fifteen user r .
A five 4 2 3
A ten 7 five 2
A fifteen 4 ten five
A user 4 r fifteen
M r 0 user 1 1
.
"""

DUPLICATES = """\
# duplicated logic
inc1 inc2 masked r .
A inc1 4 r 1
A inc2 4 r 1
A masked 8 inc2 7
M r 0 masked 1 1
.
"""

FORWARD_REFERENCE = """\
# consumer defined before its constant producer
user k r .
A user 4 r k
A k 4 20 22
M r 0 user 1 1
.
"""


class TestConstantPropagation:
    def test_chain_folds_and_is_eliminated(self):
        spec = parse_spec(CONSTANT_CHAIN)
        optimized, report = optimize_spec(spec)
        assert report.constant_components == {
            "five": 5, "ten": 10, "fifteen": 15,
        }
        assert dict(report.eliminated) == {"five": 5, "ten": 10, "fifteen": 15}
        assert optimized.component_names() == ["user", "r"]
        # the surviving consumer now reads a literal
        user = optimized.component("user")
        assert user.right.is_constant
        assert user.right.constant_value() == 15

    def test_traced_constants_survive(self):
        spec = parse_spec(CONSTANT_CHAIN.replace("five ten", "five* ten"))
        optimized, report = optimize_spec(spec)
        assert "five" in optimized.component_names()
        assert dict(report.eliminated) == {"ten": 10, "fifteen": 15}

    def test_forward_references_are_resolved(self):
        spec = parse_spec(FORWARD_REFERENCE)
        optimized, report = optimize_spec(spec)
        assert report.constant_components == {"k": 42}
        assert optimized.undefined_references() == set()
        assert optimized.component("user").right.constant_value() == 42

    def test_bit_field_references_fold_to_extracted_bits(self):
        spec = parse_spec(
            "# bits\nk low r .\nA k 4 12 0\nA low 4 r k.2.3\nM r 0 low 1 1\n."
        )
        optimized, report = optimize_spec(spec)
        # k = 12 = 0b1100, bits 2..3 = 0b11 = 3
        assert optimized.component("low").right.constant_value() == 3

    def test_out_of_range_selector_not_folded(self):
        spec = parse_spec(
            "# bad sel\ns r .\nS s 5 1 2\nM r 0 s 1 1\n.", validate=False
        )
        optimized, report = optimize_spec(spec)
        assert report.constant_components == {}
        assert "s" in optimized.component_names()


class TestDeduplication:
    def test_duplicate_alus_merge(self):
        spec = parse_spec(DUPLICATES)
        optimized, report = optimize_spec(spec)
        assert report.merged == (("inc2", "inc1"),)
        assert "inc2" not in optimized.component_names()
        # the reader was re-pointed at the survivor
        masked = optimized.component("masked")
        assert masked.referenced_names() == {"inc1"}

    def test_merge_can_be_disabled(self):
        spec = parse_spec(DUPLICATES)
        optimized, report = optimize_spec(
            spec, SpecOptPasses(merge_duplicates=False)
        )
        assert report.merged == ()
        assert "inc2" in optimized.component_names()


COPY_FORWARD = """\
# selector that is a wire
src fwd user r .
A src 4 r 1
S fwd 1 33 src 44
A user 4 fwd 2
M r 0 user 1 1
.
"""


class TestCopyPropagation:
    def test_constant_select_forwards_the_referenced_component(self):
        spec = parse_spec(COPY_FORWARD)
        optimized, report = optimize_spec(spec)
        assert report.forwarded == (("fwd", "src"),)
        assert "fwd" not in optimized.component_names()
        assert optimized.component("user").referenced_names() == {"src"}

    def test_forwarding_can_be_disabled(self):
        spec = parse_spec(COPY_FORWARD)
        optimized, report = optimize_spec(
            spec, SpecOptPasses(forward_copies=False)
        )
        assert report.forwarded == ()
        assert "fwd" in optimized.component_names()

    def test_traced_selector_is_not_forwarded(self):
        spec = parse_spec(COPY_FORWARD.replace("src fwd", "src fwd*"))
        optimized, report = optimize_spec(spec)
        assert report.forwarded == ()
        assert "fwd" in optimized.component_names()

    def test_memory_reference_is_not_forwarded(self):
        # the chosen case references a memory output, which may hold raw
        # out-of-word values (memory-mapped input) — never forwarded
        spec = parse_spec(
            "# mem case\nfwd user r .\nS fwd 1 33 r 44\nA user 4 fwd 2\n"
            "M r 0 user 1 1\n."
        )
        _, report = optimize_spec(spec)
        assert report.forwarded == ()

    def test_out_of_range_select_is_not_forwarded(self):
        spec = parse_spec(
            "# bad sel\nsrc s r .\nA src 4 r 1\nS s 5 1 src\nM r 0 s 1 1\n.",
            validate=False,
        )
        _, report = optimize_spec(spec)
        assert report.forwarded == ()

    def test_bit_field_case_is_not_forwarded(self):
        spec = parse_spec(
            "# sliced case\nsrc s r .\nA src 4 r 1\nS s 1 33 src.0.2\n"
            "M r 0 s 1 1\n."
        )
        _, report = optimize_spec(spec)
        assert report.forwarded == ()

    def test_restore_fills_forwarded_selector(self):
        spec = parse_spec(COPY_FORWARD)
        _, report = optimize_spec(spec)
        final_values = {"src": 7, "user": 9, "r": 9}
        restore_observables(report, final_values, cycles_run=4)
        assert final_values["fwd"] == 7

    def test_forwarding_matches_interpreter(self):
        spec = parse_spec(COPY_FORWARD)
        reference = InterpreterBackend().run(spec, cycles=10)
        for backend_factory in (
            lambda: ThreadedBackend(specopt=True, cache=False),
            lambda: CompiledBackend(specopt=True, cache=False),
        ):
            candidate = backend_factory().run(spec, cycles=10)
            assert candidate.final_values == reference.final_values
            assert candidate.memory_contents == reference.memory_contents


class TestRestoration:
    def test_restore_rebuilds_final_values(self):
        spec = parse_spec(CONSTANT_CHAIN)
        _, report = optimize_spec(spec)
        final_values = {"user": 16, "r": 16}
        restore_observables(report, final_values, cycles_run=4)
        assert final_values["five"] == 5
        assert final_values["fifteen"] == 15

    def test_restore_with_zero_cycles_matches_initial_state(self):
        spec = parse_spec(CONSTANT_CHAIN)
        _, report = optimize_spec(spec)
        final_values = {"user": 0, "r": 0}
        restore_observables(report, final_values, cycles_run=0)
        assert final_values["five"] == 0

    def test_merged_component_copies_survivor(self):
        spec = parse_spec(DUPLICATES)
        _, report = optimize_spec(spec)
        final_values = {"inc1": 9, "masked": 1, "r": 8}
        restore_observables(report, final_values, cycles_run=3)
        assert final_values["inc2"] == 9


class TestBackendParity:
    """The pipeline's core claim: observables are bit-identical."""

    @pytest.mark.parametrize("source", [CONSTANT_CHAIN, DUPLICATES,
                                        FORWARD_REFERENCE])
    @pytest.mark.parametrize("backend_factory", [
        lambda: ThreadedBackend(specopt=True, cache=False),
        lambda: CompiledBackend(specopt=True, cache=False),
    ])
    def test_optimized_backends_match_interpreter(self, source, backend_factory):
        spec = parse_spec(source)
        reference = InterpreterBackend().run(spec, cycles=10)
        candidate = backend_factory().run(spec, cycles=10)
        assert candidate.final_values == reference.final_values
        assert candidate.memory_contents == reference.memory_contents
        assert candidate.output_integers() == reference.output_integers()


class TestResolvePasses:
    def test_bool_and_instance_inputs(self):
        assert resolve_passes(True).any_enabled
        assert not resolve_passes(False).any_enabled
        assert not resolve_passes(None).any_enabled
        custom = SpecOptPasses(merge_duplicates=False)
        assert resolve_passes(custom) is custom

    def test_report_embeds_component_level_analysis(self):
        spec = parse_spec(CONSTANT_CHAIN)
        _, report = optimize_spec(spec)
        assert report.component_report is not None
        assert "user" in report.component_report.inlined_alus
        assert report.summary().startswith("specopt:")
