"""Unit tests for the Pascal code generator (Appendix E output style)."""

from repro.compiler.codegen_pascal import PascalCodeGenerator, generate_pascal
from repro.compiler.optimizer import CodegenOptions
from repro.rtl.parser import parse_spec


class TestProgramSkeleton:
    def test_program_header_and_footer(self, counter_spec):
        source = generate_pascal(counter_spec)
        assert source.startswith("program simulator (input, output);")
        assert source.rstrip().endswith("end.")

    def test_runtime_functions_present(self, counter_spec):
        source = generate_pascal(counter_spec)
        for fragment in (
            "function land (a, b: integer): integer;",
            "function dologic (funct, left, right: integer): integer;",
            "function sinput (address: integer): integer;",
            "procedure soutput (address, data: integer);",
            "procedure initvalues;",
        ):
            assert fragment in source

    def test_word_mask_constant(self, counter_spec):
        assert "const mask = 2147483647;" in generate_pascal(counter_spec)

    def test_variable_declarations_use_ljb_prefix(self, counter_spec):
        source = generate_pascal(counter_spec)
        assert "ljbnext" in source
        assert "tempcount" in source
        assert "ljbcount: array[0..0] of integer;" in source

    def test_cycle_loop(self, counter_spec):
        source = generate_pascal(counter_spec)
        assert "while cyclecount <= cycles do begin" in source
        assert "cyclecount := cyclecount + 1;" in source


class TestFigure41Alu:
    def test_generic_alu_calls_dologic(self, figure_4_1_spec):
        source = generate_pascal(figure_4_1_spec)
        assert "ljbalu := dologic(tempcompute, templeft, 3048);" in source

    def test_constant_add_inlined(self, figure_4_1_spec):
        # Figure 4.1: "add := left + 3048;"
        source = generate_pascal(figure_4_1_spec)
        assert "ljbadd := templeft + 3048;" in source

    def test_comparison_functions_emit_if(self):
        spec = parse_spec("# t\nq r .\nA q 12 r 7\nM r 0 q 1 1\n.")
        source = generate_pascal(spec)
        assert "if tempr = 7 then ljbq := 1" in source

    def test_inline_disabled(self, figure_4_1_spec):
        source = generate_pascal(
            figure_4_1_spec, CodegenOptions(inline_constant_functions=False)
        )
        assert "ljbadd := dologic(4, templeft, 3048);" in source


class TestFigure42Selector:
    def test_case_statement(self, figure_4_2_spec):
        # Figure 4.2: "case index of / 0 selector = value0; ..."
        source = generate_pascal(figure_4_2_spec)
        assert "case tempindex of" in source
        assert "0 : ljbselector := tempvalue0;" in source
        assert "3 : ljbselector := tempvalue3;" in source


class TestFigure43Memory:
    def test_operation_case_dispatch(self, figure_4_3_spec):
        source = generate_pascal(figure_4_3_spec)
        assert "case land(opnmemory, 3) of" in source
        assert "tempmemory := ljbmemory[adrmemory];" in source
        assert "tempmemory := sinput(adrmemory);" in source
        assert "soutput(adrmemory, datamemory)" in source

    def test_initialisation_from_value_list(self, figure_4_3_spec):
        source = generate_pascal(figure_4_3_spec)
        assert "ljbmemory[0] := 12;" in source
        assert "ljbmemory[3] := 78;" in source

    def test_trace_statements(self, figure_4_3_spec):
        source = generate_pascal(figure_4_3_spec)
        assert "if land(opnmemory, 5) = 5 then" in source
        assert "if land(opnmemory, 9) = 8 then" in source
        assert "'Write to memory at '" in source

    def test_constant_operation_drops_case(self, counter_spec):
        source = generate_pascal(counter_spec)
        assert "case land(opncount, 3) of" not in source
        assert "ljbcount[adrcount] := datacount" in source


class TestTraceStatements:
    def test_cycle_trace_prints_starred_components(self, counter_spec):
        source = generate_pascal(counter_spec)
        assert "write('Cycle ', cyclecount:3);" in source
        assert "write(' count= ', tempcount:1);" in source

    def test_trace_suppressed_without_stars(self):
        spec = parse_spec("# t\nx r .\nA x 4 r 1\nM r 0 x 1 1\n.")
        assert "Cycle" not in generate_pascal(spec)


class TestExpressionRendering:
    def test_bit_field_uses_land_and_div(self):
        spec = parse_spec("# t\nx r .\nA x 2 r.3.4 0\nM r 0 x 1 1\n.")
        generator = PascalCodeGenerator(spec)
        rendered = generator.pascal_expression(spec.component("x").left)
        assert rendered == "land(tempr, 24) div 8"

    def test_concatenation_uses_multipliers(self):
        spec = parse_spec("# t\nx r .\nA x 2 r.0.3,#01 0\nM r 0 x 1 1\n.")
        generator = PascalCodeGenerator(spec)
        rendered = generator.pascal_expression(spec.component("x").left)
        assert "* 4" in rendered
        assert "+ 1" in rendered

    def test_constant_folds(self, counter_spec):
        generator = PascalCodeGenerator(counter_spec)
        assert generator.pascal_expression(
            counter_spec.component("wrapped").right
        ) == "7"

    def test_whole_stack_machine_generates(self):
        from repro.machines import build_stack_machine_spec, sieve_program

        source = generate_pascal(build_stack_machine_spec(sieve_program(3)))
        assert source.count("case") > 10
        assert "ljbprog" in source
