"""Unit tests for the compiled backend (prepare / run / timing split)."""

import pytest

from repro.compiler.compiled import CompiledBackend, compile_spec
from repro.compiler.optimizer import CodegenOptions
from repro.core.iosystem import QueueIO
from repro.core.trace import TraceOptions
from repro.errors import MemoryRangeError, SelectorRangeError
from repro.rtl.parser import parse_spec


@pytest.fixture
def backend():
    return CompiledBackend()


class TestPrepare:
    def test_prepare_exposes_source_and_timings(self, backend, counter_spec):
        prepared = backend.prepare(counter_spec)
        assert "def simulate" in prepared.source
        assert prepared.generate_seconds >= 0
        assert prepared.compile_seconds >= 0
        assert prepared.prepare_seconds == pytest.approx(
            prepared.generate_seconds + prepared.compile_seconds
        )

    def test_write_source(self, backend, counter_spec, tmp_path):
        prepared = backend.prepare(counter_spec)
        path = prepared.write_source(tmp_path / "simulator.py")
        assert path.read_text() == prepared.source

    def test_compile_spec_helper(self, counter_spec):
        assert compile_spec(counter_spec).spec is counter_spec


class TestRun:
    def test_counter_behaviour(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=10)
        assert result.backend == "compiled"
        assert result.value("count") == 2
        assert result.output_integers() == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]
        assert result.memory("count") == [2]

    def test_run_reuses_prepared_simulation(self, backend, counter_spec):
        prepared = backend.prepare(counter_spec)
        first = prepared.run(cycles=6)
        second = prepared.run(cycles=6)
        assert first.final_values == second.final_values

    def test_trace_collection(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=5, trace=True)
        assert result.trace.values_of("count") == [0, 1, 2, 3, 4]

    def test_trace_disabled(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=5, trace=False)
        assert len(result.trace) == 0

    def test_stats(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=9)
        assert result.stats.cycles == 9
        assert result.stats.component_evaluations == 9 * 4

    def test_inputs(self, backend):
        spec = parse_spec("# io\nacc inport .\nA acc 4 inport 0\nM inport 1 0 2 2\n.")
        result = backend.run(spec, cycles=3, io=QueueIO([10, 20, 30]))
        assert result.value("inport") == 30

    def test_override_hook_runs_per_component(self, backend, counter_spec):
        seen = set()

        def override(name, value, cycle):
            seen.add(name)
            return value

        backend.run(counter_spec, cycles=2, override=override)
        assert seen == {"next", "wrapped", "count", "outport"}

    def test_override_matches_interpreter_exactly(self, counter_spec):
        from repro.interp.interpreter import InterpreterBackend

        def stuck_bit(name, value, cycle):
            return value | 4 if name == "next" else value

        reference = InterpreterBackend().run(
            counter_spec, cycles=12, override=stuck_bit
        )
        for specopt in (False, True):
            candidate = CompiledBackend(specopt=specopt, cache=False).run(
                counter_spec, cycles=12, override=stuck_bit
            )
            assert candidate.final_values == reference.final_values
            assert candidate.memory_contents == reference.memory_contents
            assert candidate.output_integers() == reference.output_integers()
            assert candidate.stats == reference.stats

    def test_override_hook_exceptions_propagate_unwrapped(
        self, backend, counter_spec
    ):
        # parity with the interpreter/threaded backends: a bug in the
        # user's hook surfaces as-is, not as a CompilationError
        def broken(name, value, cycle):
            return {}[name]

        with pytest.raises(KeyError):
            backend.run(counter_spec, cycles=1, override=broken)

    def test_capability_flags(self, backend, counter_spec):
        assert backend.supports_override
        assert backend.supports_full_stats
        prepared = backend.prepare(counter_spec)
        assert prepared.supports_override
        assert prepared.supports_full_stats

    def test_full_stats_breakdown(self, backend, counter_spec):
        result = backend.run(counter_spec, cycles=4)
        assert result.stats.alu_function_usage[4] == 4   # add
        assert result.stats.alu_function_usage[8] == 4   # and
        assert result.stats.memory("count").writes == 4
        assert result.stats.memory("outport").outputs == 4

    def test_trace_options_passed(self, backend, counter_spec):
        result = backend.run(
            counter_spec,
            cycles=4,
            trace=TraceOptions(trace_cycles=True, trace_memory_accesses=False),
        )
        assert len(result.trace.cycles) == 4


class TestRuntimeErrors:
    def test_selector_out_of_range(self, backend):
        spec = parse_spec(
            "# bad\ns r .\nS s r 1 2\nM r 0 5 1 1\n.",
        )
        with pytest.raises(SelectorRangeError):
            backend.run(spec, cycles=3)

    def test_memory_address_out_of_range(self, backend):
        spec = parse_spec(
            "# bad\nm r .\nM m r 0 0 4\nM r 0 9 1 1\n.",
        )
        with pytest.raises(MemoryRangeError):
            backend.run(spec, cycles=3)


class TestOptimizationEquivalence:
    @pytest.mark.parametrize(
        "options",
        [
            CodegenOptions(),
            CodegenOptions.unoptimized(),
            CodegenOptions(fold_constant_selectors=False),
            CodegenOptions(emit_bounds_checks=False),
        ],
    )
    def test_all_option_sets_agree_on_sieve(self, options):
        from repro.machines import build_stack_machine_spec, prepare_sieve_workload

        workload = prepare_sieve_workload(5)
        spec = build_stack_machine_spec(workload.program)
        backend = CompiledBackend(options)
        result = backend.run(spec, cycles=workload.cycles_needed)
        assert result.output_integers() == workload.outputs
