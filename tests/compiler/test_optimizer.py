"""Unit tests for code-generation options and constant analysis."""

from repro.compiler.optimizer import (
    CodegenOptions,
    analyze_specification,
    constant_alu_function,
    constant_memory_operation,
    memory_may_trace_reads,
    memory_may_trace_writes,
    selector_constant_cases,
)
from repro.rtl.parser import parse_spec


class TestOptions:
    def test_defaults_enable_paper_optimizations(self):
        options = CodegenOptions()
        assert options.inline_constant_functions
        assert options.specialize_constant_memory_ops

    def test_unoptimized_profile(self):
        options = CodegenOptions.unoptimized()
        assert not options.inline_constant_functions
        assert not options.specialize_constant_memory_ops
        assert not options.fold_constant_selectors

    def test_fastest_profile_disables_tracing(self):
        options = CodegenOptions.fastest()
        assert not options.emit_cycle_trace
        assert not options.emit_access_trace
        assert options.inline_constant_functions


class TestConstantAnalyses:
    def test_constant_alu_function(self, figure_4_1_spec):
        assert constant_alu_function(figure_4_1_spec.component("add")) == 4
        assert constant_alu_function(figure_4_1_spec.component("alu")) is None

    def test_invalid_constant_function_treated_as_generic(self):
        spec = parse_spec("# t\nx .\nA x 99 1 2\n.")
        assert constant_alu_function(spec.component("x")) is None

    def test_constant_memory_operation(self, counter_spec):
        assert constant_memory_operation(counter_spec.component("count")) == 1
        assert constant_memory_operation(counter_spec.component("outport")) == 3

    def test_non_constant_memory_operation(self):
        spec = parse_spec("# t\nm op .\nM m 0 0 op 1\nM op 0 0 0 1\n.")
        assert constant_memory_operation(spec.component("m")) is None

    def test_selector_constant_cases(self, figure_4_2_spec):
        spec = parse_spec("# t\ns r .\nS s r.0.1 10 20 30 40\nM r 0 0 1 1\n.")
        assert selector_constant_cases(spec.component("s")) == [10, 20, 30, 40]
        assert selector_constant_cases(figure_4_2_spec.component("selector")) is None


class TestTraceHeuristics:
    def test_constant_operation_with_trace_bits(self):
        spec = parse_spec("# t\nm n .\nM m 0 1 5 1\nM n 0 1 8 2\n.")
        assert memory_may_trace_writes(spec.component("m"))
        assert not memory_may_trace_reads(spec.component("m"))
        assert memory_may_trace_reads(spec.component("n"))

    def test_constant_operation_without_trace_bits(self, counter_spec):
        assert not memory_may_trace_writes(counter_spec.component("count"))
        assert not memory_may_trace_reads(counter_spec.component("count"))

    def test_wide_dynamic_operation_may_trace(self):
        spec = parse_spec("# t\nm op .\nM m 0 0 op.0.3 1\nM op 0 0 0 1\n.")
        assert memory_may_trace_writes(spec.component("m"))
        assert memory_may_trace_reads(spec.component("m"))

    def test_narrow_dynamic_operation_cannot_trace(self):
        spec = parse_spec("# t\nm op .\nM m 0 0 op.0.1 1\nM op 0 0 0 1\n.")
        assert not memory_may_trace_writes(spec.component("m"))
        assert not memory_may_trace_reads(spec.component("m"))


class TestAnalysisReport:
    def test_counts_for_counter(self, counter_spec):
        report = analyze_specification(counter_spec)
        assert set(report.inlined_alus) == {"next", "wrapped"}
        assert report.generic_alus == ()
        assert set(report.specialized_memories) == {"count", "outport"}

    def test_unoptimized_report_everything_generic(self, counter_spec):
        report = analyze_specification(counter_spec, CodegenOptions.unoptimized())
        assert report.inlined_alus == ()
        assert set(report.generic_alus) == {"next", "wrapped"}
        assert report.specialized_memories == ()

    def test_stack_machine_mixed(self):
        from repro.machines import build_stack_machine_spec, sieve_program

        spec = build_stack_machine_spec(sieve_program(3))
        report = analyze_specification(spec)
        # the working ALU has a selector-driven function: stays generic
        assert "alures" in report.generic_alus
        assert report.inlined_alu_count >= 8
        assert "prog" in report.specialized_memories
        assert "stack" in report.generic_memories
