"""Unit tests for the Python code generator (the ASIM II contribution)."""

import pytest

from repro.compiler.codegen_python import PythonCodeGenerator, generate_python
from repro.compiler.optimizer import CodegenOptions
from repro.rtl.parser import parse_spec


def compile_module(source):
    namespace = {}
    exec(compile(source, "<generated>", "exec"), namespace)
    return namespace


class TestGeneratedStructure:
    def test_module_compiles(self, counter_spec):
        namespace = compile_module(generate_python(counter_spec))
        assert callable(namespace["simulate"])
        assert namespace["COMPONENT_COUNT"] == 4

    def test_header_mentions_source(self, counter_spec):
        source = generate_python(counter_spec)
        assert "three bit counter" in source

    def test_variables_follow_paper_naming(self, counter_spec):
        source = generate_python(counter_spec)
        assert "v_next" in source        # paper: ljbnext
        assert "t_count" in source       # paper: tempcount
        assert "m_count" in source       # paper: ljbcount[...]

    def test_initial_values_emitted(self, figure_4_3_spec):
        source = generate_python(figure_4_3_spec)
        assert "m_memory = [0] * 4" in source
        assert "m_memory[0] = 12" in source
        assert "m_memory[3] = 78" in source


class TestFigure41AluGeneration:
    """Figure 4.1: generic dologic call vs inlined constant function."""

    def test_generic_alu_calls_dologic(self, figure_4_1_spec):
        source = generate_python(figure_4_1_spec)
        assert "v_alu = dologic(t_compute, t_left, 3048)" in source

    def test_constant_function_inlined(self, figure_4_1_spec):
        source = generate_python(figure_4_1_spec)
        assert "v_add = (((t_left) + (3048)) & 2147483647)" in source

    def test_inlining_disabled_by_option(self, figure_4_1_spec):
        source = generate_python(
            figure_4_1_spec, CodegenOptions(inline_constant_functions=False)
        )
        assert "v_add = dologic(4, t_left, 3048)" in source


class TestFigure42SelectorGeneration:
    """Figure 4.2: the selector becomes a case dispatch on the index."""

    def test_case_dispatch(self, figure_4_2_spec):
        source = generate_python(figure_4_2_spec)
        assert "_i = t_index" in source
        assert "if _i == 0:" in source
        assert "elif _i == 3:" in source
        assert "v_selector = t_value0" in source

    def test_out_of_range_raises(self, figure_4_2_spec):
        source = generate_python(figure_4_2_spec)
        assert "selector_case_error('selector', _i, 4, cyclecount)" in source

    def test_constant_selector_folded_to_table(self):
        spec = parse_spec("# t\ns r .\nS s r.0.1 10 20 30 40\nM r 0 0 1 1\n.")
        source = generate_python(spec)
        assert "_SEL_s = (10, 20, 30, 40)" in source
        assert "v_s = _SEL_s[_i]" in source

    def test_constant_folding_disabled_by_option(self):
        spec = parse_spec("# t\ns r .\nS s r.0.1 10 20 30 40\nM r 0 0 1 1\n.")
        source = generate_python(spec, CodegenOptions(fold_constant_selectors=False))
        assert "_SEL_s" not in source
        assert "if _i == 0:" in source


class TestFigure43MemoryGeneration:
    """Figure 4.3: operation dispatch, initialisation and trace statements."""

    def test_dynamic_operation_dispatch(self, figure_4_3_spec):
        source = generate_python(figure_4_3_spec)
        assert "_op = o_memory & 3" in source
        assert "t_memory = m_memory[a_memory]" in source
        assert "m_memory[a_memory] = d_memory" in source
        assert "io.read(a_memory, cycle=cyclecount)" in source
        assert "io.write(a_memory, d_memory, cycle=cyclecount)" in source

    def test_trace_conditions_match_paper(self, figure_4_3_spec):
        source = generate_python(figure_4_3_spec)
        assert "(o_memory & 5) == 5" in source    # paper: land(operation,5)=5
        assert "(o_memory & 9) == 8" in source    # paper: land(operation,9)=8

    def test_constant_operation_specialised(self, counter_spec):
        source = generate_python(counter_spec)
        # the counter register always writes: no dispatch emitted for it
        assert "_op = o_count" not in source
        assert "m_count[a_count] = d_count" in source

    def test_constant_specialisation_disabled_by_option(self, counter_spec):
        source = generate_python(
            counter_spec, CodegenOptions(specialize_constant_memory_ops=False)
        )
        assert "_op = o_count & 3" in source

    def test_bounds_check_emitted(self, figure_4_3_spec):
        source = generate_python(figure_4_3_spec)
        assert "memory_range_error('memory', a_memory, 4, cyclecount)" in source

    def test_bounds_check_can_be_disabled(self, figure_4_3_spec):
        source = generate_python(
            figure_4_3_spec, CodegenOptions(emit_bounds_checks=False)
        )
        assert "memory_range_error('" not in source


class TestTraceGeneration:
    def test_traced_components_recorded(self, counter_spec):
        source = generate_python(counter_spec)
        assert "trace_log.record_cycle(cyclecount, {'count': t_count})" in source

    def test_trace_suppressed_by_option(self, counter_spec):
        source = generate_python(counter_spec, CodegenOptions.fastest())
        assert "record_cycle" not in source

    def test_no_trace_code_without_star_declarations(self):
        spec = parse_spec("# t\nx r .\nA x 4 r 1\nM r 0 x 1 1\n.")
        assert "record_cycle" not in generate_python(spec)


class TestResolver:
    def test_resolve_distinguishes_memories(self, counter_spec):
        generator = PythonCodeGenerator(counter_spec)
        assert generator.resolve("next") == "v_next"
        assert generator.resolve("count") == "t_count"


class TestGeneratedSemantics:
    @pytest.mark.parametrize("options", [CodegenOptions(), CodegenOptions.unoptimized()])
    def test_counter_behaviour(self, counter_spec, options):
        from repro.core.iosystem import QueueIO

        namespace = compile_module(generate_python(counter_spec, options))
        io = QueueIO()
        raw = namespace["simulate"](10, io, None, None)
        assert raw["values"]["count"] == 2
        assert io.output_values() == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]

    def test_stats_object_updated(self, counter_spec):
        from repro.core.iosystem import QueueIO
        from repro.core.stats import SimulationStats

        namespace = compile_module(generate_python(counter_spec))
        stats = SimulationStats()
        namespace["simulate"](7, QueueIO(), None, stats)
        assert stats.cycles == 7
        assert stats.component_evaluations == 7 * 4
