"""Unit tests for the prepare caches: the in-process LRU layer and the
persistent on-disk artifact store (hash-keyed generate/compile skipping)."""

import os
import pickle
import threading
import time

import pytest

from repro.compiler.cache import (
    DiskCache,
    PrepareCache,
    artifact_key,
    clear_prepare_cache,
    default_cache_dir,
    prepare_cache_stats,
    resolve_disk,
    spec_fingerprint,
)
from repro.compiler.compiled import CompiledBackend
from repro.compiler.optimizer import CodegenOptions
from repro.compiler.threaded import ThreadedBackend
from repro.rtl.parser import parse_spec


@pytest.fixture
def private_cache():
    return PrepareCache(max_entries=4)


class TestFingerprint:
    def test_stable_across_reparses(self, counter_spec_text):
        first = spec_fingerprint(parse_spec(counter_spec_text))
        second = spec_fingerprint(parse_spec(counter_spec_text))
        assert first == second

    def test_source_name_does_not_matter(self, counter_spec_text):
        a = parse_spec(counter_spec_text, source_name="a.asim")
        b = parse_spec(counter_spec_text, source_name="b.asim")
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_component_changes_matter(self, counter_spec_text):
        original = parse_spec(counter_spec_text)
        changed = parse_spec(counter_spec_text.replace("next 7", "next 3"))
        assert spec_fingerprint(original) != spec_fingerprint(changed)

    def test_trace_marks_matter(self, counter_spec_text):
        plain = parse_spec(counter_spec_text.replace("count*", "count"))
        traced = parse_spec(counter_spec_text)
        assert spec_fingerprint(plain) != spec_fingerprint(traced)


class TestPrepareCacheUnit:
    def test_get_or_create_counts_hits_and_misses(self, private_cache):
        calls = []

        def factory():
            calls.append(1)
            return "artifact"

        first, hit1 = private_cache.get_or_create(("k",), factory)
        second, hit2 = private_cache.get_or_create(("k",), factory)
        assert (first, hit1) == ("artifact", False)
        assert (second, hit2) == ("artifact", True)
        assert len(calls) == 1
        assert private_cache.stats.hits == 1
        assert private_cache.stats.misses == 1
        assert private_cache.stats.hit_rate == 0.5

    def test_lru_eviction(self, private_cache):
        for index in range(6):
            private_cache.get_or_create((index,), lambda: index)
        assert len(private_cache) == 4
        assert private_cache.stats.evictions == 2

    def test_clear_resets_everything(self, private_cache):
        private_cache.get_or_create(("k",), lambda: 1)
        private_cache.clear()
        assert len(private_cache) == 0
        assert private_cache.stats.requests == 0


class TestCompiledBackendCaching:
    def test_second_prepare_skips_generation(self, counter_spec, private_cache):
        backend = CompiledBackend(cache=private_cache)
        first = backend.prepare(counter_spec)
        second = backend.prepare(counter_spec)
        assert not first.cache_hit
        assert second.cache_hit
        assert private_cache.stats.hits == 1
        # generation phases were skipped entirely on the hit
        assert second.generate_seconds == 0.0
        assert second.compile_seconds == 0.0
        assert second.source == first.source

    def test_hit_produces_identical_results(self, counter_spec, private_cache):
        backend = CompiledBackend(cache=private_cache)
        first = backend.prepare(counter_spec).run(cycles=10)
        second = backend.prepare(counter_spec).run(cycles=10)
        assert first.final_values == second.final_values
        assert first.output_integers() == second.output_integers()

    def test_identical_spec_from_different_objects_hits(
        self, counter_spec_text, private_cache
    ):
        backend = CompiledBackend(cache=private_cache)
        backend.prepare(parse_spec(counter_spec_text))
        again = backend.prepare(parse_spec(counter_spec_text))
        assert again.cache_hit

    def test_different_options_do_not_collide(self, counter_spec, private_cache):
        CompiledBackend(cache=private_cache).prepare(counter_spec)
        other = CompiledBackend(
            CodegenOptions.unoptimized(), cache=private_cache
        ).prepare(counter_spec)
        assert not other.cache_hit

    def test_cache_disabled(self, counter_spec):
        backend = CompiledBackend(cache=False)
        assert not backend.prepare(counter_spec).cache_hit
        assert not backend.prepare(counter_spec).cache_hit


class TestThreadedBackendCaching:
    def test_second_prepare_reuses_program(self, counter_spec, private_cache):
        backend = ThreadedBackend(cache=private_cache)
        first = backend.prepare(counter_spec)
        second = backend.prepare(counter_spec)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.program is first.program

    def test_specopt_config_is_part_of_the_key(self, counter_spec, private_cache):
        ThreadedBackend(specopt=True, cache=private_cache).prepare(counter_spec)
        other = ThreadedBackend(
            specopt=False, cache=private_cache
        ).prepare(counter_spec)
        assert not other.cache_hit


class TestConcurrentAccess:
    """The cache invariants hold when hammered from the serving pool.

    The bookkeeping invariant used throughout: every ``get_or_create``
    counts exactly one hit or one miss, every miss stores one entry, and
    every eviction removes one — so ``misses - evictions == len(cache)``
    and ``hits + misses`` equals the number of calls, no matter how the
    threads interleave.
    """

    def _assert_invariants(self, cache, calls):
        stats = cache.stats
        assert stats.hits + stats.misses == calls
        assert stats.misses - stats.evictions == len(cache)
        assert len(cache) <= cache.max_entries

    def test_counters_consistent_under_thread_hammer(self):
        import threading

        cache = PrepareCache(max_entries=4)
        threads, per_thread, keys = 8, 50, 10
        barrier = threading.Barrier(threads)

        def hammer(seed):
            barrier.wait()
            for i in range(per_thread):
                key = ((seed * 7 + i) % keys,)
                value, _ = cache.get_or_create(key, lambda k=key: k)
                assert value == key  # a racing store never crosses keys

        workers = [
            threading.Thread(target=hammer, args=(seed,))
            for seed in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        self._assert_invariants(cache, threads * per_thread)
        assert cache.stats.evictions > 0  # 10 keys churned through 4 slots

    def test_racing_threads_share_one_artifact_per_key(self):
        import threading

        cache = PrepareCache(max_entries=8)
        barrier = threading.Barrier(6)
        seen = []

        def build():
            return object()

        def racer():
            barrier.wait()
            artifact, _ = cache.get_or_create(("k",), build)
            seen.append(artifact)

        workers = [threading.Thread(target=racer) for _ in range(6)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        # whoever won the race, every caller got the same stored artifact
        assert len({id(artifact) for artifact in seen}) == 1
        self._assert_invariants(cache, 6)

    def test_pool_hammer_keeps_cache_consistent(self, counter_spec_text):
        """Concurrent prepares of many machines through the threaded
        backend: LRU eviction churns, counters stay consistent, and every
        prepared simulation still runs correctly."""
        from concurrent.futures import ThreadPoolExecutor

        specs = [
            parse_spec(counter_spec_text.replace("next 7", f"next {mask}"))
            for mask in range(3, 8)
        ]
        expected = [
            ThreadedBackend(cache=False).prepare(spec).run(cycles=4).value("count")
            for spec in specs
        ]
        cache = PrepareCache(max_entries=3)
        backend = ThreadedBackend(cache=cache)

        def prepare_and_run(index):
            spec = specs[index % len(specs)]
            result = backend.prepare(spec).run(cycles=4)
            return result.value("count") == expected[index % len(specs)]

        with ThreadPoolExecutor(max_workers=6) as executor:
            correct = list(executor.map(prepare_and_run, range(30)))
        assert all(correct)
        self._assert_invariants(cache, 30)
        assert cache.stats.evictions > 0

    def test_simulation_pool_workers_hit_not_miss(self, counter_spec):
        """Hammering one machine from the serving pool produces exactly one
        miss; the worker prepares are all hits on the shared artifact."""
        from repro.serving import RunRequest, SimulationPool

        cache = PrepareCache(max_entries=4)
        backend = ThreadedBackend(cache=cache)
        with SimulationPool(counter_spec, backend=backend,
                            max_workers=6) as pool:
            batch = pool.run_batch([RunRequest(cycles=5)] * 24)
        assert batch.ok
        assert cache.stats.misses == 1
        assert cache.stats.evictions == 0
        self._assert_invariants(cache, cache.stats.requests)


class TestPrepareCachePickling:
    def test_round_trip_keeps_entries_and_rebuilds_the_lock(self, counter_spec):
        cache = PrepareCache(max_entries=4)
        backend = ThreadedBackend(cache=cache)
        backend.prepare(counter_spec)
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == 1
        # the clone is fully usable: its lock was rebuilt on unpickling.
        # The first prepare reuses the cloned program (lowering skipped)
        # but rebuilds the closure plans the program dropped on pickling;
        # the second prepare is a full hit.
        again = ThreadedBackend(cache=clone).prepare(counter_spec)
        assert clone.stats.hits == 1
        assert again.run(cycles=10).value("count") == 2
        assert ThreadedBackend(cache=clone).prepare(counter_spec).cache_hit

    def test_builtin_backends_are_picklable(self, counter_spec):
        # what the process executor relies on for custom backend instances
        for backend in (ThreadedBackend(), CompiledBackend()):
            clone = pickle.loads(pickle.dumps(backend))
            result = clone.prepare(counter_spec).run(cycles=10)
            assert result.value("count") == 2


class TestDiskCache:
    def _lowered(self, spec):
        from repro.lowering.program import lower_cached

        return lower_cached(spec, True, None)[0]

    def test_program_round_trip(self, counter_spec, tmp_path):
        disk = DiskCache(tmp_path)
        program = self._lowered(counter_spec)
        disk.store_program("fp", "key", program)
        loaded = disk.load_program("fp", "key")
        assert loaded is not None
        assert loaded.slots == program.slots
        assert disk.stats.hits == 1

    def test_missing_entry_is_a_miss(self, tmp_path):
        disk = DiskCache(tmp_path)
        assert disk.load_program("nope", "key") is None
        assert disk.load_source("nope", "key") is None
        assert disk.stats.misses == 2

    def test_truncated_program_file_falls_back_to_rebuild(
        self, counter_spec, tmp_path
    ):
        from repro.lowering.program import lower_cached

        disk = DiskCache(tmp_path)
        _, hit = lower_cached(counter_spec, True, None, disk)
        assert not hit  # first build populates the store
        path = next(tmp_path.glob("*.ir"))
        path.write_bytes(path.read_bytes()[:25])  # truncate mid-pickle
        program, hit = lower_cached(counter_spec, True, None, disk)
        assert not hit  # damaged entry read as a miss, clean rebuild
        assert program.slots  # ... and the rebuild overwrote the bad file
        _, hit = lower_cached(counter_spec, True, None, disk)
        assert hit

    def test_garbage_source_file_falls_back_to_generation(
        self, counter_spec, tmp_path
    ):
        disk = DiskCache(tmp_path)
        backend = CompiledBackend(cache=False, disk=disk)
        first = backend.prepare(counter_spec)
        path = next(tmp_path.glob("*.py"))
        path.write_text("definitely not a cached module")
        rebuilt = CompiledBackend(cache=False, disk=DiskCache(tmp_path))
        prepared = rebuilt.prepare(counter_spec)
        assert prepared.run(cycles=10).final_values == first.run(
            cycles=10
        ).final_values

    def test_artifacts_from_another_code_version_are_misses(
        self, counter_spec, tmp_path, monkeypatch
    ):
        """A codegen fix must not keep serving pre-fix artifacts: entries
        are stamped with the package version and invalidated across it."""
        import repro.compiler.cache as cache_mod

        disk = DiskCache(tmp_path)
        disk.store_program("fp", "key", self._lowered(counter_spec))
        disk.store_source("fp", "key", "source = 1\n")
        monkeypatch.setattr(cache_mod, "_code_version", lambda: "0.0.0-older")
        stale = DiskCache(tmp_path)
        assert stale.load_program("fp", "key") is None
        assert stale.load_source("fp", "key") is None

    def test_version_mismatch_is_a_miss(self, counter_spec, tmp_path):
        disk = DiskCache(tmp_path)
        program = self._lowered(counter_spec)
        disk.store_program("fp", "key", program)
        path = disk.path_for("fp", "key", "ir")
        path.write_bytes(pickle.dumps({"format": -1, "artifact": program}))
        assert disk.load_program("fp", "key") is None

    def test_compiled_cold_start_skips_generation(self, counter_spec, tmp_path):
        warm = CompiledBackend(cache=False, disk=DiskCache(tmp_path))
        warm.prepare(counter_spec)
        # a fresh process: new backend, empty in-process cache, same disk
        cold_disk = DiskCache(tmp_path)
        cold = CompiledBackend(cache=False, disk=cold_disk)
        prepared = cold.prepare(counter_spec)
        assert prepared.generate_seconds == 0.0  # source came from disk
        assert cold_disk.stats.hits == 2  # the IR and the source
        assert prepared.run(cycles=10).value("count") == 2

    def test_specopt_configuration_keys_the_source(self, counter_spec,
                                                   tmp_path):
        """A specopt'd module must never be served to a non-specopt
        backend (their step lists and entry points differ)."""
        opt = CompiledBackend(specopt=True, cache=False,
                              disk=DiskCache(tmp_path))
        opt.prepare(counter_spec)
        plain = CompiledBackend(specopt=False, cache=False,
                                disk=DiskCache(tmp_path))
        prepared = plain.prepare(counter_spec)
        assert prepared.generate_seconds > 0.0  # fresh generation, no reuse
        assert prepared.run(cycles=10).value("count") == 2
        # one source entry per pass configuration
        assert len(list(tmp_path.glob("*.py"))) == 2

    def test_null_byte_source_falls_back_to_generation(self, counter_spec,
                                                       tmp_path):
        backend = CompiledBackend(cache=False, disk=DiskCache(tmp_path))
        backend.prepare(counter_spec)
        path = next(tmp_path.glob("*.py"))
        # valid header, poisoned body: survives the decode + header check
        # but compile() rejects it (ValueError, not SyntaxError)
        path.write_text(path.read_text() + "\x00")
        rebuilt = CompiledBackend(cache=False, disk=DiskCache(tmp_path))
        assert rebuilt.prepare(counter_spec).run(cycles=10).value("count") == 2

    def test_untrusted_root_is_never_read(self, counter_spec, tmp_path,
                                          monkeypatch):
        """Unpickling executes code, so a root owned by another uid (a
        squatted temp path) must read as all-misses, not as artifacts."""
        import os

        import repro.compiler.cache as cache_mod

        disk = DiskCache(tmp_path)
        program = self._lowered(counter_spec)
        disk.store_program("fp", "key", program)
        assert DiskCache(tmp_path).load_program("fp", "key") is not None
        other_uid = os.stat(tmp_path).st_uid + 1
        monkeypatch.setattr(cache_mod, "_current_uid", lambda: other_uid)
        untrusted = DiskCache(tmp_path)
        assert untrusted.load_program("fp", "key") is None
        assert untrusted.stats.misses == 1

    def test_env_var_overrides_the_default_directory(
        self, counter_spec, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == tmp_path
        backend = ThreadedBackend(cache=False, disk=True)
        backend.prepare(counter_spec)
        assert list(tmp_path.glob("*.ir"))

    def test_resolve_disk_forms(self, tmp_path):
        assert resolve_disk(None) is None
        assert resolve_disk(False) is None
        assert resolve_disk(str(tmp_path)).root == tmp_path
        disk = DiskCache(tmp_path)
        assert resolve_disk(disk) is disk
        assert resolve_disk(True).root == default_cache_dir()

    def test_concurrent_writers_never_clobber(self, counter_spec, tmp_path):
        """Atomic rename: racing stores interleave with loads and every
        load sees either a complete artifact or a miss — never a torn
        file raising out of the cache."""
        import threading

        disk = DiskCache(tmp_path)
        program = self._lowered(counter_spec)
        # one entry exists before the race, so every load during it must
        # observe a complete artifact (the whole point of atomic rename)
        disk.store_program("fp", "key", program)
        loaded_ok = []
        barrier = threading.Barrier(8)

        def writer():
            barrier.wait()
            for _ in range(20):
                disk.store_program("fp", "key", program)

        def reader():
            barrier.wait()
            for _ in range(40):
                value = DiskCache(tmp_path).load_program("fp", "key")
                if value is not None:
                    loaded_ok.append(value.slots == program.slots)

        threads = [threading.Thread(target=writer) for _ in range(4)] + [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert loaded_ok and all(loaded_ok)
        # no temp-file debris survived the stores
        assert not list(tmp_path.glob("*.tmp-*"))

    def test_artifact_key_is_stable_and_distinguishes(self):
        options = CodegenOptions()
        assert artifact_key(options) == artifact_key(CodegenOptions())
        assert artifact_key(options) != artifact_key(
            CodegenOptions.unoptimized()
        )


class TestGlobalCache:
    def test_global_counters_accumulate(self, counter_spec):
        clear_prepare_cache()
        backend = CompiledBackend()  # defaults to the process-wide cache
        backend.prepare(counter_spec)
        backend.prepare(counter_spec)
        stats = prepare_cache_stats()
        assert stats.misses >= 1
        assert stats.hits >= 1
        clear_prepare_cache()
        assert prepare_cache_stats().requests == 0


class TestDiskCachePrune:
    """DiskCache.prune: LRU eviction, budgets, corruption GC, concurrency."""

    @staticmethod
    def _store(cache, key, body="x = 1\n", age=0.0):
        """One source entry, *age* seconds old; returns its path."""
        path = cache.store_source("f" * 8, key, body)
        if age:
            stamp = time.time() - age
            os.utime(path, (stamp, stamp))
        return path

    def test_eviction_is_oldest_first(self, tmp_path):
        cache = DiskCache(tmp_path)
        old = self._store(cache, "old", age=300)
        middle = self._store(cache, "middle", age=200)
        young = self._store(cache, "young", age=100)
        survivor_budget = middle.stat().st_size + young.stat().st_size
        report = cache.prune(max_bytes=survivor_budget)
        assert report.removed_evicted == 1
        assert not old.exists()
        assert middle.exists() and young.exists()

    def test_load_refreshes_lru_position(self, tmp_path):
        cache = DiskCache(tmp_path)
        fingerprint = "f" * 8
        loaded = self._store(cache, "loaded", age=300)
        untouched = self._store(cache, "untouched", age=200)
        # a successful load touches mtime, so the *other* entry is now LRU
        assert cache.load_source(fingerprint, "loaded") is not None
        report = cache.prune(max_bytes=loaded.stat().st_size)
        assert report.removed_evicted == 1
        assert loaded.exists()
        assert not untouched.exists()

    def test_budget_boundary_exactly_at_limit_keeps_everything(self, tmp_path):
        cache = DiskCache(tmp_path)
        paths = [self._store(cache, f"k{i}", age=10 * i) for i in range(3)]
        total = sum(path.stat().st_size for path in paths)
        report = cache.prune(max_bytes=total)
        assert report.removed_files == 0
        assert report.remaining_bytes == total
        # one byte less forces exactly one (the oldest) out
        report = cache.prune(max_bytes=total - 1)
        assert report.removed_evicted == 1
        assert not paths[-1].exists()  # age grows with index: k2 is oldest

    def test_zero_budget_empties_the_cache(self, tmp_path):
        cache = DiskCache(tmp_path)
        for index in range(3):
            self._store(cache, f"k{index}")
        report = cache.prune(max_bytes=0)
        assert report.removed_evicted == 3
        assert report.remaining_files == 0
        assert cache.info().total_bytes == 0

    def test_max_age_boundary(self, tmp_path):
        cache = DiskCache(tmp_path)
        now = time.time()
        at_limit = self._store(cache, "at-limit")
        os.utime(at_limit, (now - 100, now - 100))
        expired = self._store(cache, "expired")
        os.utime(expired, (now - 101, now - 101))
        report = cache.prune(max_age=100, now=now)
        assert report.removed_expired == 1
        assert at_limit.exists()  # exactly max_age old is kept
        assert not expired.exists()

    def test_age_is_time_since_last_use_not_creation(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = self._store(cache, "k", age=500)
        assert cache.load_source("f" * 8, "k") is not None  # touches mtime
        report = cache.prune(max_age=100)
        assert report.removed_expired == 0
        assert path.exists()

    def test_corrupted_entries_are_removed(self, tmp_path):
        cache = DiskCache(tmp_path)
        good = self._store(cache, "good")
        garbage_ir = tmp_path / "aaaa-bbbb.ir"
        garbage_ir.write_bytes(b"not a pickle at all")
        headerless_py = tmp_path / "cccc-dddd.py"
        headerless_py.write_text("x = 1\n")
        report = cache.prune()
        assert report.removed_corrupt == 2
        assert good.exists()
        assert not garbage_ir.exists() and not headerless_py.exists()

    def test_version_stale_entries_are_removed(self, counter_spec, tmp_path,
                                               monkeypatch):
        from repro.compiler import cache as cache_module
        from repro.lowering import lower

        cache = DiskCache(tmp_path)
        fingerprint = spec_fingerprint(counter_spec)
        cache.store_program(fingerprint, "key", lower(counter_spec))
        monkeypatch.setattr(cache_module, "_code_version", lambda: "9.9.9")
        report = cache.prune()
        assert report.removed_corrupt == 1
        assert cache.info().files == 0

    def test_stale_tmp_files_are_collected_fresh_ones_kept(self, tmp_path):
        cache = DiskCache(tmp_path)
        self._store(cache, "k")  # ensures the root exists
        stale = tmp_path / "aaaa-bbbb.py.tmp-zzz"
        stale.write_bytes(b"half-written")
        old = time.time() - 2 * 3600
        os.utime(stale, (old, old))
        fresh = tmp_path / "aaaa-cccc.py.tmp-yyy"
        fresh.write_bytes(b"being written right now")
        report = cache.prune()
        assert report.removed_stale_tmp == 1
        assert not stale.exists()
        assert fresh.exists()

    def test_missing_root_is_an_empty_report(self, tmp_path):
        cache = DiskCache(tmp_path / "never-created")
        report = cache.prune(max_bytes=0)
        assert report.scanned_files == 0
        assert report.removed_files == 0

    def test_negative_budgets_are_rejected(self, tmp_path):
        cache = DiskCache(tmp_path)
        with pytest.raises(ValueError):
            cache.prune(max_bytes=-1)
        with pytest.raises(ValueError):
            cache.prune(max_age=-1.0)

    def test_info_counts_by_kind(self, counter_spec, tmp_path):
        from repro.lowering import lower

        cache = DiskCache(tmp_path)
        self._store(cache, "src")
        cache.store_program(spec_fingerprint(counter_spec), "key",
                            lower(counter_spec))
        info = cache.info()
        assert info.files == 2
        assert info.by_kind == {"ir": 1, "py": 1}
        assert info.total_bytes > 0
        assert str(tmp_path) in info.summary()

    def test_concurrent_prune_while_load_never_errors(self, counter_spec,
                                                      tmp_path):
        cache = DiskCache(tmp_path)
        fingerprint = spec_fingerprint(counter_spec)
        stop = threading.Event()
        failures: list[BaseException] = []

        def loader():
            while not stop.is_set():
                try:
                    cache.store_source(fingerprint, "hot", "x = 1\n")
                    cache.load_source(fingerprint, "hot")
                except BaseException as exc:  # noqa: BLE001
                    failures.append(exc)
                    return

        def pruner():
            while not stop.is_set():
                try:
                    cache.prune(max_bytes=0)
                except BaseException as exc:  # noqa: BLE001
                    failures.append(exc)
                    return

        threads = [threading.Thread(target=loader) for _ in range(3)] + [
            threading.Thread(target=pruner) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.4)
        stop.set()
        for thread in threads:
            thread.join()
        assert not failures

    def test_prune_counts_into_eviction_stats(self, tmp_path):
        cache = DiskCache(tmp_path)
        self._store(cache, "k")
        cache.prune(max_bytes=0)
        assert cache.stats.evictions == 1
