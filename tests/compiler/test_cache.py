"""Unit tests for the prepare cache (hash-keyed generate/compile skipping)."""

import pytest

from repro.compiler.cache import (
    PrepareCache,
    clear_prepare_cache,
    prepare_cache_stats,
    spec_fingerprint,
)
from repro.compiler.compiled import CompiledBackend
from repro.compiler.optimizer import CodegenOptions
from repro.compiler.threaded import ThreadedBackend
from repro.rtl.parser import parse_spec


@pytest.fixture
def private_cache():
    return PrepareCache(max_entries=4)


class TestFingerprint:
    def test_stable_across_reparses(self, counter_spec_text):
        first = spec_fingerprint(parse_spec(counter_spec_text))
        second = spec_fingerprint(parse_spec(counter_spec_text))
        assert first == second

    def test_source_name_does_not_matter(self, counter_spec_text):
        a = parse_spec(counter_spec_text, source_name="a.asim")
        b = parse_spec(counter_spec_text, source_name="b.asim")
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_component_changes_matter(self, counter_spec_text):
        original = parse_spec(counter_spec_text)
        changed = parse_spec(counter_spec_text.replace("next 7", "next 3"))
        assert spec_fingerprint(original) != spec_fingerprint(changed)

    def test_trace_marks_matter(self, counter_spec_text):
        plain = parse_spec(counter_spec_text.replace("count*", "count"))
        traced = parse_spec(counter_spec_text)
        assert spec_fingerprint(plain) != spec_fingerprint(traced)


class TestPrepareCacheUnit:
    def test_get_or_create_counts_hits_and_misses(self, private_cache):
        calls = []

        def factory():
            calls.append(1)
            return "artifact"

        first, hit1 = private_cache.get_or_create(("k",), factory)
        second, hit2 = private_cache.get_or_create(("k",), factory)
        assert (first, hit1) == ("artifact", False)
        assert (second, hit2) == ("artifact", True)
        assert len(calls) == 1
        assert private_cache.stats.hits == 1
        assert private_cache.stats.misses == 1
        assert private_cache.stats.hit_rate == 0.5

    def test_lru_eviction(self, private_cache):
        for index in range(6):
            private_cache.get_or_create((index,), lambda: index)
        assert len(private_cache) == 4
        assert private_cache.stats.evictions == 2

    def test_clear_resets_everything(self, private_cache):
        private_cache.get_or_create(("k",), lambda: 1)
        private_cache.clear()
        assert len(private_cache) == 0
        assert private_cache.stats.requests == 0


class TestCompiledBackendCaching:
    def test_second_prepare_skips_generation(self, counter_spec, private_cache):
        backend = CompiledBackend(cache=private_cache)
        first = backend.prepare(counter_spec)
        second = backend.prepare(counter_spec)
        assert not first.cache_hit
        assert second.cache_hit
        assert private_cache.stats.hits == 1
        # generation phases were skipped entirely on the hit
        assert second.generate_seconds == 0.0
        assert second.compile_seconds == 0.0
        assert second.source == first.source

    def test_hit_produces_identical_results(self, counter_spec, private_cache):
        backend = CompiledBackend(cache=private_cache)
        first = backend.prepare(counter_spec).run(cycles=10)
        second = backend.prepare(counter_spec).run(cycles=10)
        assert first.final_values == second.final_values
        assert first.output_integers() == second.output_integers()

    def test_identical_spec_from_different_objects_hits(
        self, counter_spec_text, private_cache
    ):
        backend = CompiledBackend(cache=private_cache)
        backend.prepare(parse_spec(counter_spec_text))
        again = backend.prepare(parse_spec(counter_spec_text))
        assert again.cache_hit

    def test_different_options_do_not_collide(self, counter_spec, private_cache):
        CompiledBackend(cache=private_cache).prepare(counter_spec)
        other = CompiledBackend(
            CodegenOptions.unoptimized(), cache=private_cache
        ).prepare(counter_spec)
        assert not other.cache_hit

    def test_cache_disabled(self, counter_spec):
        backend = CompiledBackend(cache=False)
        assert not backend.prepare(counter_spec).cache_hit
        assert not backend.prepare(counter_spec).cache_hit


class TestThreadedBackendCaching:
    def test_second_prepare_reuses_program(self, counter_spec, private_cache):
        backend = ThreadedBackend(cache=private_cache)
        first = backend.prepare(counter_spec)
        second = backend.prepare(counter_spec)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.program is first.program

    def test_specopt_config_is_part_of_the_key(self, counter_spec, private_cache):
        ThreadedBackend(specopt=True, cache=private_cache).prepare(counter_spec)
        other = ThreadedBackend(
            specopt=False, cache=private_cache
        ).prepare(counter_spec)
        assert not other.cache_hit


class TestConcurrentAccess:
    """The cache invariants hold when hammered from the serving pool.

    The bookkeeping invariant used throughout: every ``get_or_create``
    counts exactly one hit or one miss, every miss stores one entry, and
    every eviction removes one — so ``misses - evictions == len(cache)``
    and ``hits + misses`` equals the number of calls, no matter how the
    threads interleave.
    """

    def _assert_invariants(self, cache, calls):
        stats = cache.stats
        assert stats.hits + stats.misses == calls
        assert stats.misses - stats.evictions == len(cache)
        assert len(cache) <= cache.max_entries

    def test_counters_consistent_under_thread_hammer(self):
        import threading

        cache = PrepareCache(max_entries=4)
        threads, per_thread, keys = 8, 50, 10
        barrier = threading.Barrier(threads)

        def hammer(seed):
            barrier.wait()
            for i in range(per_thread):
                key = ((seed * 7 + i) % keys,)
                value, _ = cache.get_or_create(key, lambda k=key: k)
                assert value == key  # a racing store never crosses keys

        workers = [
            threading.Thread(target=hammer, args=(seed,))
            for seed in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        self._assert_invariants(cache, threads * per_thread)
        assert cache.stats.evictions > 0  # 10 keys churned through 4 slots

    def test_racing_threads_share_one_artifact_per_key(self):
        import threading

        cache = PrepareCache(max_entries=8)
        barrier = threading.Barrier(6)
        seen = []

        def build():
            return object()

        def racer():
            barrier.wait()
            artifact, _ = cache.get_or_create(("k",), build)
            seen.append(artifact)

        workers = [threading.Thread(target=racer) for _ in range(6)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        # whoever won the race, every caller got the same stored artifact
        assert len({id(artifact) for artifact in seen}) == 1
        self._assert_invariants(cache, 6)

    def test_pool_hammer_keeps_cache_consistent(self, counter_spec_text):
        """Concurrent prepares of many machines through the threaded
        backend: LRU eviction churns, counters stay consistent, and every
        prepared simulation still runs correctly."""
        from concurrent.futures import ThreadPoolExecutor

        specs = [
            parse_spec(counter_spec_text.replace("next 7", f"next {mask}"))
            for mask in range(3, 8)
        ]
        expected = [
            ThreadedBackend(cache=False).prepare(spec).run(cycles=4).value("count")
            for spec in specs
        ]
        cache = PrepareCache(max_entries=3)
        backend = ThreadedBackend(cache=cache)

        def prepare_and_run(index):
            spec = specs[index % len(specs)]
            result = backend.prepare(spec).run(cycles=4)
            return result.value("count") == expected[index % len(specs)]

        with ThreadPoolExecutor(max_workers=6) as executor:
            correct = list(executor.map(prepare_and_run, range(30)))
        assert all(correct)
        self._assert_invariants(cache, 30)
        assert cache.stats.evictions > 0

    def test_simulation_pool_workers_hit_not_miss(self, counter_spec):
        """Hammering one machine from the serving pool produces exactly one
        miss; the worker prepares are all hits on the shared artifact."""
        from repro.serving import RunRequest, SimulationPool

        cache = PrepareCache(max_entries=4)
        backend = ThreadedBackend(cache=cache)
        with SimulationPool(counter_spec, backend=backend,
                            max_workers=6) as pool:
            batch = pool.run_batch([RunRequest(cycles=5)] * 24)
        assert batch.ok
        assert cache.stats.misses == 1
        assert cache.stats.evictions == 0
        self._assert_invariants(cache, cache.stats.requests)


class TestGlobalCache:
    def test_global_counters_accumulate(self, counter_spec):
        clear_prepare_cache()
        backend = CompiledBackend()  # defaults to the process-wide cache
        backend.prepare(counter_spec)
        backend.prepare(counter_spec)
        stats = prepare_cache_stats()
        assert stats.misses >= 1
        assert stats.hits >= 1
        clear_prepare_cache()
        assert prepare_cache_stats().requests == 0
