"""Unit tests for the prepare cache (hash-keyed generate/compile skipping)."""

import pytest

from repro.compiler.cache import (
    PrepareCache,
    clear_prepare_cache,
    prepare_cache_stats,
    spec_fingerprint,
)
from repro.compiler.compiled import CompiledBackend
from repro.compiler.optimizer import CodegenOptions
from repro.compiler.threaded import ThreadedBackend
from repro.rtl.parser import parse_spec


@pytest.fixture
def private_cache():
    return PrepareCache(max_entries=4)


class TestFingerprint:
    def test_stable_across_reparses(self, counter_spec_text):
        first = spec_fingerprint(parse_spec(counter_spec_text))
        second = spec_fingerprint(parse_spec(counter_spec_text))
        assert first == second

    def test_source_name_does_not_matter(self, counter_spec_text):
        a = parse_spec(counter_spec_text, source_name="a.asim")
        b = parse_spec(counter_spec_text, source_name="b.asim")
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_component_changes_matter(self, counter_spec_text):
        original = parse_spec(counter_spec_text)
        changed = parse_spec(counter_spec_text.replace("next 7", "next 3"))
        assert spec_fingerprint(original) != spec_fingerprint(changed)

    def test_trace_marks_matter(self, counter_spec_text):
        plain = parse_spec(counter_spec_text.replace("count*", "count"))
        traced = parse_spec(counter_spec_text)
        assert spec_fingerprint(plain) != spec_fingerprint(traced)


class TestPrepareCacheUnit:
    def test_get_or_create_counts_hits_and_misses(self, private_cache):
        calls = []

        def factory():
            calls.append(1)
            return "artifact"

        first, hit1 = private_cache.get_or_create(("k",), factory)
        second, hit2 = private_cache.get_or_create(("k",), factory)
        assert (first, hit1) == ("artifact", False)
        assert (second, hit2) == ("artifact", True)
        assert len(calls) == 1
        assert private_cache.stats.hits == 1
        assert private_cache.stats.misses == 1
        assert private_cache.stats.hit_rate == 0.5

    def test_lru_eviction(self, private_cache):
        for index in range(6):
            private_cache.get_or_create((index,), lambda: index)
        assert len(private_cache) == 4
        assert private_cache.stats.evictions == 2

    def test_clear_resets_everything(self, private_cache):
        private_cache.get_or_create(("k",), lambda: 1)
        private_cache.clear()
        assert len(private_cache) == 0
        assert private_cache.stats.requests == 0


class TestCompiledBackendCaching:
    def test_second_prepare_skips_generation(self, counter_spec, private_cache):
        backend = CompiledBackend(cache=private_cache)
        first = backend.prepare(counter_spec)
        second = backend.prepare(counter_spec)
        assert not first.cache_hit
        assert second.cache_hit
        assert private_cache.stats.hits == 1
        # generation phases were skipped entirely on the hit
        assert second.generate_seconds == 0.0
        assert second.compile_seconds == 0.0
        assert second.source == first.source

    def test_hit_produces_identical_results(self, counter_spec, private_cache):
        backend = CompiledBackend(cache=private_cache)
        first = backend.prepare(counter_spec).run(cycles=10)
        second = backend.prepare(counter_spec).run(cycles=10)
        assert first.final_values == second.final_values
        assert first.output_integers() == second.output_integers()

    def test_identical_spec_from_different_objects_hits(
        self, counter_spec_text, private_cache
    ):
        backend = CompiledBackend(cache=private_cache)
        backend.prepare(parse_spec(counter_spec_text))
        again = backend.prepare(parse_spec(counter_spec_text))
        assert again.cache_hit

    def test_different_options_do_not_collide(self, counter_spec, private_cache):
        CompiledBackend(cache=private_cache).prepare(counter_spec)
        other = CompiledBackend(
            CodegenOptions.unoptimized(), cache=private_cache
        ).prepare(counter_spec)
        assert not other.cache_hit

    def test_cache_disabled(self, counter_spec):
        backend = CompiledBackend(cache=False)
        assert not backend.prepare(counter_spec).cache_hit
        assert not backend.prepare(counter_spec).cache_hit


class TestThreadedBackendCaching:
    def test_second_prepare_reuses_program(self, counter_spec, private_cache):
        backend = ThreadedBackend(cache=private_cache)
        first = backend.prepare(counter_spec)
        second = backend.prepare(counter_spec)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.program is first.program

    def test_specopt_config_is_part_of_the_key(self, counter_spec, private_cache):
        ThreadedBackend(specopt=True, cache=private_cache).prepare(counter_spec)
        other = ThreadedBackend(
            specopt=False, cache=private_cache
        ).prepare(counter_spec)
        assert not other.cache_hit


class TestGlobalCache:
    def test_global_counters_accumulate(self, counter_spec):
        clear_prepare_cache()
        backend = CompiledBackend()  # defaults to the process-wide cache
        backend.prepare(counter_spec)
        backend.prepare(counter_spec)
        stats = prepare_cache_stats()
        assert stats.misses >= 1
        assert stats.hits >= 1
        clear_prepare_cache()
        assert prepare_cache_stats().requests == 0
