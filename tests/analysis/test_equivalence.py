"""Tests for the verification sweeps built on backend comparison."""

from repro.analysis.equivalence import (
    fault_detection_experiment,
    verify_library,
)
from repro.machines import build_counter_spec, prepare_sieve_workload
from repro.machines.stack_machine import build_stack_machine_spec


class TestLibraryVerification:
    def test_every_bundled_machine_is_equivalent(self):
        verification = verify_library(max_cycles=200)
        assert verification.all_equivalent
        assert len(verification.results) >= 6

    def test_render_lists_machines(self):
        verification = verify_library(max_cycles=60)
        text = verification.render()
        assert "counter" in text
        assert "EQUIVALENT" in text


class TestFaultDetection:
    def test_observable_faults_detected(self):
        spec = build_counter_spec(width_bits=4)
        detections = fault_detection_experiment(
            spec, components=["next", "wrapped"], cycles=20
        )
        assert all(d.detected for d in detections)
        assert all(d.good_outputs != d.faulty_outputs for d in detections)

    def test_unobservable_fault_not_detected(self):
        # stuck the wrap mask ALU of a counter that never reaches the wrap
        # point within the run: force "next" to its correct constant value
        spec = build_counter_spec(width_bits=4)
        detections = fault_detection_experiment(
            spec, components=["next"], cycles=1, stuck_value=1
        )
        # during a single cycle the only output is the initial 0 either way
        assert not detections[0].detected

    def test_stack_machine_control_faults_detected(self):
        workload = prepare_sieve_workload(3)
        spec = build_stack_machine_spec(workload.program)
        detections = fault_detection_experiment(
            spec,
            components=["pcnext", "tosnext"],
            cycles=workload.cycles_needed,
        )
        assert all(d.detected for d in detections)

    def test_detection_records_component_and_value(self):
        spec = build_counter_spec()
        detection = fault_detection_experiment(spec, ["next"], cycles=10,
                                               stuck_value=3)[0]
        assert detection.component == "next"
        assert detection.stuck_value == 3
