"""Tests for fault injection (Section 2.3.2)."""

import pytest

from repro.analysis.faults import (
    TransientFault,
    inject_stuck_at,
    inject_stuck_bit,
    stuck_at_override,
    transient_override,
)
from repro.core.comparison import compare_backends
from repro.core.simulator import Simulator
from repro.errors import FaultConfigurationError
from repro.machines import build_gcd_spec


class TestStuckAt:
    def test_component_forced_to_constant(self, counter_spec):
        faulty = inject_stuck_at(counter_spec, "wrapped", 5)
        result = Simulator(faulty).run(cycles=10)
        assert result.value("count") == 5
        assert result.output_integers()[1:] == [5] * 9

    def test_original_spec_untouched(self, counter_spec):
        inject_stuck_at(counter_spec, "wrapped", 5)
        assert Simulator(counter_spec).run(cycles=3).value("count") == 3

    def test_fault_works_on_both_backends(self, counter_spec):
        faulty = inject_stuck_at(counter_spec, "next", 1)
        assert compare_backends(faulty, cycles=20).equivalent

    def test_header_notes_fault(self, counter_spec):
        faulty = inject_stuck_at(counter_spec, "next", 0)
        assert "fault" in faulty.header_comment

    def test_unknown_component_rejected(self, counter_spec):
        with pytest.raises(FaultConfigurationError):
            inject_stuck_at(counter_spec, "ghost", 0)

    def test_memory_rejected(self, counter_spec):
        with pytest.raises(FaultConfigurationError):
            inject_stuck_at(counter_spec, "count", 0)

    def test_value_masked_to_word(self, counter_spec):
        faulty = inject_stuck_at(counter_spec, "wrapped", 2 ** 31 + 3)
        assert Simulator(faulty).run(cycles=3).value("count") == 3


class TestStuckBit:
    def test_stuck_at_one_forces_bit(self, counter_spec):
        faulty = inject_stuck_bit(counter_spec, "wrapped", 0, 1)
        result = Simulator(faulty).run(cycles=8, trace=True)
        assert all(value & 1 for value in result.trace.values_of("count")[1:])

    def test_stuck_at_zero_clears_bit(self, counter_spec):
        faulty = inject_stuck_bit(counter_spec, "wrapped", 0, 0)
        result = Simulator(faulty).run(cycles=8, trace=True)
        assert all(value & 1 == 0 for value in result.trace.values_of("count"))

    def test_stuck_low_bit_freezes_the_counter(self, counter_spec):
        # with bit 0 of the increment path stuck at 0, count+1 always loses
        # its low bit and the counter can never leave zero
        faulty = inject_stuck_bit(counter_spec, "wrapped", 0, 0)
        result = Simulator(faulty).run(cycles=8, trace=True)
        assert result.trace.values_of("count") == [0] * 8

    def test_selector_can_be_faulted(self):
        spec = build_gcd_spec(12, 8)
        faulty = inject_stuck_bit(spec, "anext", 1, 1)
        # still runs on both backends and differs from the good machine
        good = Simulator(spec).run(cycles=10).value("a")
        bad = Simulator(faulty).run(cycles=10).value("a")
        assert good != bad

    def test_invalid_bit_rejected(self, counter_spec):
        with pytest.raises(FaultConfigurationError):
            inject_stuck_bit(counter_spec, "wrapped", 31, 1)

    def test_invalid_stuck_value_rejected(self, counter_spec):
        with pytest.raises(FaultConfigurationError):
            inject_stuck_bit(counter_spec, "wrapped", 0, 2)

    def test_backends_agree_on_faulty_design(self, counter_spec):
        faulty = inject_stuck_bit(counter_spec, "next", 2, 1)
        assert compare_backends(faulty, cycles=20).equivalent


class TestTransientFaults:
    def test_bit_flip_window(self, counter_spec):
        fault = TransientFault(name="wrapped", bit=0, first_cycle=3, last_cycle=3)
        override = transient_override([fault])
        result = Simulator(counter_spec, backend="interpreter").run(
            cycles=8, override=override, trace=True
        )
        values = result.trace.values_of("count")
        # cycle 3 writes a flipped value; later cycles recover by counting on
        assert values[4] != 4

    def test_fault_active_window(self):
        fault = TransientFault("x", 0, first_cycle=2, last_cycle=4)
        assert not fault.active(1)
        assert fault.active(2) and fault.active(4)
        assert not fault.active(5)

    def test_open_ended_fault(self):
        fault = TransientFault("x", 0, first_cycle=2)
        assert fault.active(1000)

    def test_invalid_bit_rejected(self):
        with pytest.raises(FaultConfigurationError):
            transient_override([TransientFault("x", 40, 0)])

    def test_stuck_at_override_also_covers_memories(self, counter_spec):
        override = stuck_at_override("count", 7)
        result = Simulator(counter_spec, backend="interpreter").run(
            cycles=5, override=override
        )
        assert result.value("count") == 7
        # the first output was latched before the first override took effect
        assert result.output_integers() == [0, 7, 7, 7, 7]
