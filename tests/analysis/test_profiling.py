"""Tests for activity profiling and coverage reporting."""

from repro.analysis.profiling import profile_activity
from repro.machines import (
    build_gcd_spec,
    build_stack_machine_spec,
    build_traffic_light_spec,
    prepare_sieve_workload,
)


class TestToggleCounts:
    def test_counter_components_toggle(self, counter_spec):
        profile = profile_activity(counter_spec, cycles=16)
        assert profile.toggle_counts["count"] == 15
        assert profile.toggle_counts["next"] == 15

    def test_idle_components_detected(self):
        spec = build_gcd_spec(8, 8)   # already equal: nothing ever changes
        profile = profile_activity(spec, cycles=10)
        assert "a" in profile.idle_components()
        assert "b" in profile.idle_components()

    def test_most_active_ranking(self, counter_spec):
        profile = profile_activity(counter_spec, cycles=20)
        names = [name for name, _ in profile.most_active(2)]
        assert len(names) == 2
        assert set(names) <= set(counter_spec.component_names())


class TestSelectorCoverage:
    def test_traffic_light_covers_all_states(self):
        spec = build_traffic_light_spec(green_cycles=2, yellow_cycles=1, red_cycles=1)
        profile = profile_activity(spec, cycles=20)
        assert profile.coverage_fraction("lamps") == 1.0
        assert profile.uncovered_selector_cases["lamps"] == []

    def test_uncovered_cases_reported(self):
        spec = build_gcd_spec(9, 3)
        profile = profile_activity(spec, cycles=12)
        # a > b throughout, so the "keep b" case of bnext is the only one taken
        assert 1 in profile.uncovered_selector_cases["bnext"]
        assert profile.coverage_fraction("bnext") < 1.0

    def test_stack_machine_decode_coverage(self):
        workload = prepare_sieve_workload(4)
        spec = build_stack_machine_spec(workload.program)
        profile = profile_activity(spec, cycles=workload.cycles_needed)
        # the sieve exercises most of the instruction set
        taken = set(profile.selector_coverage["tosnext"])
        from repro.isa.stack_isa import Op

        assert {int(Op.PUSH), int(Op.ADD), int(Op.LT), int(Op.LOAD),
                int(Op.STORE), int(Op.JZ), int(Op.JMP), int(Op.OUT)} <= taken
        # but MUL never runs in the sieve
        assert int(Op.MUL) in profile.uncovered_selector_cases["tosnext"]


class TestRendering:
    def test_render_mentions_activity_and_gaps(self):
        spec = build_gcd_spec(9, 3)
        text = profile_activity(spec, cycles=12).render()
        assert "activity profile" in text
        assert "most active" in text

    def test_alu_usage_collected(self, counter_spec):
        profile = profile_activity(counter_spec, cycles=5)
        assert profile.alu_function_usage[4] == 5
        assert profile.stats.cycles == 5
