"""Unit tests for cross-backend comparison."""

import pytest

from repro.analysis.faults import inject_stuck_at
from repro.core.comparison import assert_equivalent, compare_backends
from repro.interp.interpreter import InterpreterBackend
from repro.rtl.parser import parse_spec


class TestEquivalence:
    def test_counter_backends_agree(self, counter_spec):
        result = compare_backends(counter_spec, cycles=30)
        assert result.equivalent
        assert result.mismatches == []
        assert result.speedup > 0

    def test_assert_equivalent_passes(self, counter_spec):
        assert assert_equivalent(counter_spec, cycles=10).equivalent

    def test_summary_format(self, counter_spec):
        summary = compare_backends(counter_spec, cycles=5).summary()
        assert summary.startswith("EQUIVALENT")
        assert "speedup" in summary

    def test_inputs_fed_identically(self):
        spec = parse_spec(
            "# io\nacc inport .\nA acc 4 inport 1\nM inport 1 0 2 2\n."
        )
        result = compare_backends(spec, cycles=3, inputs=[7, 8, 9])
        assert result.equivalent

    def test_custom_backends(self, counter_spec):
        result = compare_backends(
            counter_spec,
            cycles=10,
            reference=InterpreterBackend(),
            candidate=InterpreterBackend(),
        )
        assert result.equivalent
        assert result.reference.backend == result.candidate.backend == "interpreter"


class TestMismatchDetection:
    def test_different_designs_detected(self, counter_spec):
        # run the good counter and a stuck-at-faulty copy, then diff the results
        from repro.compiler.compiled import CompiledBackend
        from repro.core.comparison import _compare_results
        from repro.core.trace import TraceOptions

        faulty = inject_stuck_at(counter_spec, "wrapped", 0)
        good = InterpreterBackend().run(counter_spec, cycles=10,
                                        trace=TraceOptions.full())
        bad = CompiledBackend().run(faulty, cycles=10, trace=TraceOptions.full())
        mismatches = _compare_results(good, bad, compare_trace=True)
        assert mismatches
        assert any("count" in m or "outputs differ" in m for m in mismatches)

    def test_assert_equivalent_raises_on_mismatch(self, counter_spec, monkeypatch):
        from repro.core import comparison

        original_compare = comparison.compare_backends

        def broken_compare(spec, cycles=None, inputs=(), **kwargs):
            result = original_compare(spec, cycles=cycles)
            result.mismatches.append("synthetic mismatch")
            return result

        monkeypatch.setattr(comparison, "compare_backends", broken_compare)
        with pytest.raises(AssertionError):
            comparison.assert_equivalent(counter_spec, cycles=5)


class TestTraceComparison:
    def test_trace_disabled_comparison_still_checks_outputs(self, counter_spec):
        result = compare_backends(counter_spec, cycles=10, trace=False)
        assert result.equivalent
        assert len(result.reference.trace) == 0
