"""Unit tests for the memory-mapped I/O system."""

import io as stdio

import pytest

from repro.core.iosystem import (
    NullIO,
    OutputEvent,
    QueueIO,
    StreamIO,
    coerce_io,
)
from repro.errors import InputExhaustedError


class TestOutputEvent:
    def test_character_rendering(self):
        event = OutputEvent(address=0, value=ord("A"))
        assert event.is_character
        assert event.character == "A"
        assert event.render() == "A"

    def test_integer_rendering(self):
        assert OutputEvent(address=1, value=42).render() == "42"

    def test_addressed_rendering_matches_paper(self):
        # paper: writeln('Output to address ', address:1, ': ', data:1)
        assert OutputEvent(address=7, value=9).render() == "Output to address 7: 9"


class TestQueueIO:
    def test_reads_in_order(self):
        io = QueueIO([1, 2, 3])
        assert [io.read(1) for _ in range(3)] == [1, 2, 3]
        assert io.inputs_consumed == 3

    def test_characters_converted(self):
        io = QueueIO(["A", 66])
        assert io.read(0) == 65
        assert io.read(0) == 66

    def test_strict_exhaustion(self):
        io = QueueIO([1])
        io.read(1)
        with pytest.raises(InputExhaustedError):
            io.read(1)

    def test_non_strict_returns_zero(self):
        io = QueueIO([], strict=False)
        assert io.read(1) == 0

    def test_remaining_inputs(self):
        io = QueueIO([5, 6])
        io.read(1)
        assert io.remaining_inputs() == 1

    def test_outputs_recorded(self):
        io = QueueIO()
        io.write(1, 10, cycle=3)
        io.write(0, 65)
        assert io.output_values() == [10, 65]
        assert io.output_values(address=1) == [10]
        assert io.outputs[0].cycle == 3

    def test_output_text(self):
        io = QueueIO()
        io.write(1, 7)
        io.write(0, ord("!"))
        assert io.output_text() == "7\n!"


class TestNullIO:
    def test_reads_zero_forever(self):
        io = NullIO()
        assert io.read(0) == 0
        assert io.read(99) == 0

    def test_records_outputs(self):
        io = NullIO()
        io.write(1, 5)
        assert io.output_values() == [5]


class TestStreamIO:
    def test_integer_io(self):
        stdin = stdio.StringIO("10 20\n30")
        stdout = stdio.StringIO()
        io = StreamIO(stdin=stdin, stdout=stdout)
        assert io.read(1) == 10
        assert io.read(1) == 20
        assert io.read(2) == 30
        io.write(1, 99)
        assert stdout.getvalue() == "99\n"

    def test_character_io(self):
        stdin = stdio.StringIO("AB")
        stdout = stdio.StringIO()
        io = StreamIO(stdin=stdin, stdout=stdout)
        assert io.read(0) == ord("A")
        io.write(0, ord("Z"))
        assert stdout.getvalue() == "Z"

    def test_exhausted_stream(self):
        io = StreamIO(stdin=stdio.StringIO(""), stdout=stdio.StringIO())
        with pytest.raises(InputExhaustedError):
            io.read(1)

    def test_addressed_output(self):
        stdout = stdio.StringIO()
        io = StreamIO(stdin=stdio.StringIO(), stdout=stdout)
        io.write(5, 3)
        assert stdout.getvalue() == "Output to address 5: 3\n"


class TestCoerceIO:
    def test_none_becomes_null(self):
        assert isinstance(coerce_io(None), NullIO)

    def test_iterable_becomes_queue(self):
        io = coerce_io([1, 2])
        assert isinstance(io, QueueIO)
        assert io.remaining_inputs() == 2

    def test_existing_instance_passed_through(self):
        io = QueueIO()
        assert coerce_io(io) is io
