"""Unit tests for the public Simulator facade."""

import pytest

from repro.compiler.compiled import CompiledBackend
from repro.compiler.optimizer import CodegenOptions
from repro.compiler.threaded import ThreadedBackend
from repro.core.simulator import BACKEND_NAMES, Simulator, make_backend, simulate
from repro.errors import BackendError
from repro.interp.interpreter import InterpreterBackend
from repro.rtl.builder import SpecBuilder


class TestMakeBackend:
    def test_names(self):
        assert isinstance(make_backend("interpreter"), InterpreterBackend)
        assert isinstance(make_backend("threaded"), ThreadedBackend)
        assert isinstance(make_backend("compiled"), CompiledBackend)
        assert set(BACKEND_NAMES) == {"interpreter", "threaded", "compiled"}

    def test_instance_passthrough(self):
        backend = InterpreterBackend()
        assert make_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(BackendError):
            make_backend("fpga")

    def test_codegen_options_forwarded(self):
        backend = make_backend("compiled", CodegenOptions.unoptimized())
        assert not backend.options.inline_constant_functions


class TestConstruction:
    def test_from_text(self, counter_spec_text):
        simulator = Simulator.from_text(counter_spec_text)
        assert simulator.backend_name == "compiled"
        assert simulator.spec.component("count")

    def test_from_file(self, tmp_path, counter_spec_text):
        path = tmp_path / "counter.asim"
        path.write_text(counter_spec_text)
        simulator = Simulator.from_file(path, backend="interpreter")
        assert simulator.backend_name == "interpreter"

    def test_from_builder(self):
        builder = SpecBuilder("builder machine")
        builder.alu("inc", 4, "r", 1)
        builder.register("r", data="inc", traced=True)
        simulator = Simulator.from_builder(builder)
        assert simulator.run(cycles=5).value("r") == 5

    def test_from_spec_object(self, counter_spec):
        assert Simulator(counter_spec).spec is counter_spec


class TestRunning:
    def test_both_backends_give_same_answer(self, counter_spec):
        expected = [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]
        for backend in BACKEND_NAMES:
            result = Simulator(counter_spec, backend=backend).run(cycles=10)
            assert result.output_integers() == expected

    def test_generated_source_only_for_compiled(self, counter_spec):
        assert Simulator(counter_spec, backend="compiled").generated_source
        assert Simulator(counter_spec, backend="interpreter").generated_source is None

    def test_prepare_seconds_exposed(self, counter_spec):
        assert Simulator(counter_spec).prepare_seconds >= 0

    def test_validation_report(self, counter_spec):
        report = Simulator(counter_spec).validation_report()
        assert report.ok

    def test_simulate_one_shot_helper(self, counter_spec_text):
        result = simulate(counter_spec_text, cycles=8, backend="interpreter")
        assert result.cycles_run == 8

    def test_run_uses_spec_cycles(self):
        builder = SpecBuilder("with cycles", cycles=7)
        builder.alu("inc", 4, "r", 1)
        builder.register("r", data="inc")
        result = Simulator.from_builder(builder).run()
        assert result.cycles_run == 7

    def test_docstring_example(self):
        # keep the module docstring example honest
        import repro.core.simulator as module

        assert ">>> result.value(\"count\")" in module.__doc__
