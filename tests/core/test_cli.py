"""Tests for the command line interface (the modern 'sim [file]')."""

import pytest

from repro.cli import main


@pytest.fixture
def spec_file(tmp_path, counter_spec_text):
    path = tmp_path / "counter.asim"
    path.write_text(counter_spec_text)
    return path


class TestCompileCommand:
    def test_python_to_stdout(self, spec_file, capsys):
        assert main(["compile", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "def simulate" in out

    def test_pascal_output(self, spec_file, capsys):
        assert main(["compile", "--pascal", str(spec_file)]) == 0
        assert "program simulator" in capsys.readouterr().out

    def test_output_file(self, spec_file, tmp_path, capsys):
        target = tmp_path / "simulator.py"
        assert main(["compile", str(spec_file), "-o", str(target)]) == 0
        assert "def simulate" in target.read_text()
        assert "wrote" in capsys.readouterr().out

    def test_no_optimize(self, spec_file, capsys):
        assert main(["compile", "--no-optimize", str(spec_file)]) == 0
        assert "dologic(4," in capsys.readouterr().out


class TestRunCommand:
    def test_run_with_cycles(self, spec_file, capsys):
        assert main(["run", str(spec_file), "-c", "10"]) == 0
        out = capsys.readouterr().out
        assert "outputs: 0 1 2 3 4 5 6 7 0 1" in out
        assert "10 cycles" in out

    def test_run_interpreter_backend(self, spec_file, capsys):
        assert main(["run", str(spec_file), "-c", "5", "-b", "interpreter"]) == 0
        assert "interpreter: 5 cycles" in capsys.readouterr().out

    def test_run_with_trace_and_stats(self, spec_file, capsys):
        assert main(["run", str(spec_file), "-c", "3", "--trace", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "Cycle" in out
        assert "cycles executed" in out

    def test_run_with_inputs(self, tmp_path, capsys):
        spec = tmp_path / "io.asim"
        spec.write_text(
            "# io\nacc inport outport .\n"
            "A acc 4 inport 0\n"
            "M inport 1 0 2 2\n"
            "M outport 1 inport 3 2\n"
            ".\n"
        )
        assert main(["run", str(spec), "-c", "3", "-i", "5", "-i", "6", "-i", "7"]) == 0
        assert "outputs:" in capsys.readouterr().out

    def test_missing_cycles_reports_error(self, spec_file, capsys):
        assert main(["run", str(spec_file)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file_reports_error(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.asim"), "-c", "1"]) == 1
        assert "error" in capsys.readouterr().err


class TestMachinesAndDemo:
    def test_machines_listing(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "counter" in out
        assert "stack-machine-sieve" in out

    def test_demo_runs_counter(self, capsys):
        assert main(["demo", "counter", "-c", "12"]) == 0
        out = capsys.readouterr().out
        assert "12 cycles" in out
        assert "cycles executed" in out

    def test_demo_unknown_machine(self, capsys):
        with pytest.raises(KeyError):
            main(["demo", "does-not-exist"])


class TestNetlistCommand:
    def test_netlist_output(self, spec_file, capsys):
        assert main(["netlist", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "bill of materials" in out
        assert "wiring list" in out

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.asim"
        bad.write_text("no comment line\n")
        assert main(["netlist", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestServeBatchCommand:
    def test_serve_batch_reports_throughput(self, spec_file, capsys):
        assert main(["serve-batch", str(spec_file), "-n", "6", "-w", "2",
                     "-c", "10"]) == 0
        out = capsys.readouterr().out
        assert "6 runs on threaded (2 workers, thread executor)" in out
        assert "6/6 runs ok" in out
        assert "runs/sec" in out

    def test_serve_batch_check_verifies_bit_identity(self, spec_file, capsys):
        assert main(["serve-batch", str(spec_file), "-n", "4", "-c", "10",
                     "--check"]) == 0
        assert "bit-identical to sequential" in capsys.readouterr().out

    @pytest.mark.parametrize("backend", ["interpreter", "compiled"])
    def test_serve_batch_backend_choice(self, spec_file, backend, capsys):
        assert main(["serve-batch", str(spec_file), "-n", "2", "-c", "5",
                     "-b", backend, "--check"]) == 0
        assert backend in capsys.readouterr().out

    def test_serve_batch_failures_exit_nonzero(self, spec_file, capsys):
        # no -c and the counter spec declares no '= N' cycle count
        assert main(["serve-batch", str(spec_file), "-n", "2"]) == 1
        assert "failed" in capsys.readouterr().err

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_serve_batch_executor_choice(self, spec_file, executor, capsys):
        assert main(["serve-batch", str(spec_file), "-n", "4", "-c", "10",
                     "-w", "2", "--executor", executor, "--check"]) == 0
        out = capsys.readouterr().out
        assert f"{executor} executor" in out
        assert "bit-identical to sequential" in out
        assert "runs/sec busy" in out  # the per-worker breakdown

    def test_serve_batch_chunk_size(self, spec_file, capsys):
        assert main(["serve-batch", str(spec_file), "-n", "6", "-c", "5",
                     "--executor", "process", "-w", "2",
                     "--chunk-size", "6"]) == 0
        out = capsys.readouterr().out
        # one chunk: exactly one worker line in the breakdown
        assert out.count("runs/sec busy") == 1


class TestModuleEntryPoint:
    def test_python_dash_m_invocation(self, spec_file):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "run", str(spec_file), "-c", "4"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert "4 cycles" in completed.stdout
