"""Unit tests for the shared instrumentation layer."""

import pytest

from repro.core.instrument import Instrumentation, plan_run
from repro.core.stats import SimulationStats
from repro.core.trace import TraceLog, TraceOptions
from repro.errors import UnknownComponentError
from repro.lowering import lower
from repro.rtl.parser import parse_spec


class TestHooks:
    def test_alu_hook_records_then_overrides(self):
        stats = SimulationStats()
        inst = Instrumentation(
            stats=stats, override=lambda n, v, c: v + 100
        )
        assert inst.alu("a", 4, 7, 0) == 107
        assert stats.alu_function_usage[4] == 1

    def test_selector_hook_records_case_usage(self):
        stats = SimulationStats()
        inst = Instrumentation(stats=stats)
        assert inst.selector("s", 2, 9, 1) == 9
        assert stats.selector_case_usage["s"][2] == 1

    def test_memory_hook_traces_pre_override_output(self):
        # the access trace shows the pre-override value; only the latched
        # output is overridden — the interpreter's historic behaviour
        log = TraceLog()
        inst = Instrumentation(
            stats=SimulationStats(),
            override=lambda n, v, c: 999,
            trace_log=log,
            trace_accesses=True,
        )
        latched = inst.memory("m", 5, 3, 42, 7)  # operation 5 = write + trace
        assert latched == 999
        assert len(log.accesses) == 1
        assert log.accesses[0].kind == "write"
        assert log.accesses[0].value == 42
        assert inst.stats.memory("m").writes == 1

    def test_read_trace_bit(self):
        log = TraceLog()
        inst = Instrumentation(trace_log=log, trace_accesses=True)
        inst.memory("m", 8, 1, 5, 0)  # operation 8 = read + trace
        assert log.accesses[0].kind == "read"

    def test_finish_folds_whole_run_counters(self):
        stats = SimulationStats()
        inst = Instrumentation(stats=stats)
        inst.finish(10, 4)
        assert stats.cycles == 10
        assert stats.component_evaluations == 40

    def test_cycle_trace_limit(self):
        log = TraceLog()
        inst = Instrumentation(
            trace_log=log, trace_limit=1, traced=(("x", "value", "x"),)
        )
        assert inst.wants_cycle_trace()
        inst.record_cycle_values(0, {"x": 5})
        assert not inst.wants_cycle_trace()
        assert log.cycles[0].values == {"x": 5}

    def test_record_cycle_values_resolves_constants(self):
        log = TraceLog()
        inst = Instrumentation(
            trace_log=log,
            traced=(("gone", "const", 30), ("x", "value", "x")),
        )
        inst.record_cycle_values(2, {"x": 8})
        assert log.cycles[0].values == {"gone": 30, "x": 8}


class TestPlanRun:
    SPEC = """\
# plan-run probe
x* r .
A x 4 r 1
M r 0 x 1 1
.
"""

    def _program(self, specopt=False):
        return lower(parse_spec(self.SPEC), specopt=specopt)

    def test_fast_path_builds_no_instrumentation(self):
        plan = plan_run(self._program(), cycles=5, io=None, trace=False,
                        collect_stats=False, override=None)
        assert plan.inst is None
        assert not plan.uses_full

    def test_stats_request_builds_instrumentation(self):
        plan = plan_run(self._program(), cycles=5, io=None, trace=False,
                        collect_stats=True, override=None)
        assert plan.inst is not None
        assert plan.inst.stats is plan.stats

    def test_override_selects_full_variant_only_when_changed(self):
        hook = lambda n, v, c: v
        unchanged = plan_run(self._program(), cycles=1, io=None, trace=False,
                             collect_stats=False, override=hook)
        assert not unchanged.uses_full
        changed = plan_run(
            lower(parse_spec(
                "# consts\nk user r .\nA k 4 1 2\nA user 4 r k\n"
                "M r 0 user 1 1\n."
            ), specopt=True),
            cycles=1, io=None, trace=False, collect_stats=False,
            override=hook,
        )
        assert changed.uses_full
        assert changed.variant.evaluations_per_cycle == 3

    def test_unknown_trace_name_raises_when_it_would_record(self):
        options = TraceOptions(trace_cycles=True, names=("nosuch",))
        with pytest.raises(UnknownComponentError):
            plan_run(self._program(), cycles=2, io=None, trace=options,
                     collect_stats=False, override=None)

    def test_unknown_trace_name_tolerated_at_zero_cycles(self):
        options = TraceOptions(trace_cycles=True, names=("nosuch",))
        plan = plan_run(self._program(), cycles=0, io=None, trace=options,
                        collect_stats=False, override=None)
        assert plan.cycle_count == 0

    def test_spec_star_names_used_by_default(self):
        plan = plan_run(self._program(), cycles=3, io=None, trace=True,
                        collect_stats=False, override=None)
        assert [entry[0] for entry in plan.inst.traced] == ["x"]
