"""Unit tests for trace records and the trace log."""

import pytest

from repro.core.trace import CycleTrace, MemoryAccessTrace, TraceLog, TraceOptions


class TestRecords:
    def test_cycle_trace_rendering(self):
        trace = CycleTrace(cycle=12, values={"pc": 3, "ac": 7})
        rendered = trace.render()
        assert rendered.startswith("Cycle  12")
        assert "pc= 3" in rendered and "ac= 7" in rendered

    def test_access_trace_rendering(self):
        write = MemoryAccessTrace(1, "ram", "write", 5, 9)
        read = MemoryAccessTrace(2, "ram", "read", 5, 9)
        assert write.render() == "Write to ram at 5: 9"
        assert read.render() == "Read from ram at 5: 9"


class TestTraceLog:
    def test_recording_and_queries(self):
        log = TraceLog()
        log.record_cycle(0, {"a": 1})
        log.record_cycle(1, {"a": 2})
        log.record_access(1, "ram", "write", 0, 5)
        assert len(log) == 2
        assert log.values_of("a") == [1, 2]
        assert log.cycle(1).values == {"a": 2}
        assert log.accesses_of("ram", "write")[0].value == 5
        assert log.accesses_of("ram", "read") == []

    def test_missing_cycle_raises(self):
        with pytest.raises(KeyError):
            TraceLog().cycle(3)

    def test_disabled_log_records_nothing(self):
        log = TraceLog(enabled=False)
        log.record_cycle(0, {"a": 1})
        log.record_access(0, "m", "read", 0, 0)
        assert len(log) == 0
        assert log.accesses == []

    def test_values_are_copied(self):
        log = TraceLog()
        values = {"a": 1}
        log.record_cycle(0, values)
        values["a"] = 99
        assert log.cycle(0).values == {"a": 1}

    def test_render_interleaves_by_cycle(self):
        log = TraceLog()
        log.record_cycle(0, {"a": 1})
        log.record_cycle(1, {"a": 2})
        log.record_access(0, "ram", "write", 3, 4)
        rendered = log.render()
        assert rendered.index("Write to ram") < rendered.index("Cycle   1")

    def test_iteration(self):
        log = TraceLog()
        log.record_cycle(0, {"a": 1})
        assert [trace.cycle for trace in log] == [0]


class TestTraceOptions:
    def test_disabled_profile(self):
        options = TraceOptions.disabled()
        assert not options.trace_cycles
        assert not options.trace_memory_accesses

    def test_full_profile(self):
        options = TraceOptions.full()
        assert options.trace_cycles
        assert options.trace_memory_accesses

    def test_defaults(self):
        options = TraceOptions()
        assert not options.trace_cycles
        assert options.names is None
        assert options.limit is None
