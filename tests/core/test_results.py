"""Unit tests for the SimulationResult container."""

from repro.core.iosystem import OutputEvent
from repro.core.results import SimulationResult


def make_result():
    return SimulationResult(
        backend="interpreter",
        cycles_run=10,
        final_values={"pc": 4, "ram": 7},
        memory_contents={"ram": [7, 0]},
        outputs=[
            OutputEvent(address=1, value=3, cycle=2),
            OutputEvent(address=0, value=65, cycle=3),
            OutputEvent(address=1, value=9, cycle=5),
        ],
        prepare_seconds=0.25,
        run_seconds=0.75,
    )


class TestAccessors:
    def test_value_and_memory(self):
        result = make_result()
        assert result.value("pc") == 4
        assert result.memory("ram") == [7, 0]

    def test_output_filters(self):
        result = make_result()
        assert result.output_values() == [3, 65, 9]
        assert result.output_integers() == [3, 9]
        assert result.output_values(address=0) == [65]

    def test_output_text(self):
        assert make_result().output_text() == "3\nA9\n"

    def test_total_seconds(self):
        assert make_result().total_seconds == 1.0

    def test_summary(self):
        summary = make_result().summary()
        assert "interpreter" in summary
        assert "10 cycles" in summary

    def test_defaults(self):
        result = SimulationResult(backend="compiled", cycles_run=0)
        assert result.final_values == {}
        assert result.outputs == []
        assert result.stats.cycles == 0
        assert len(result.trace) == 0
