"""Unit tests for simulation statistics."""

from repro.core.stats import MemoryStats, SimulationStats


class TestMemoryStats:
    def test_operation_classification(self):
        stats = MemoryStats()
        stats.record(0, 1)
        stats.record(1, 2)
        stats.record(2, 3)
        stats.record(3, 4)
        stats.record(5, 2)   # write with trace bit: still a write
        assert stats.reads == 1
        assert stats.writes == 2
        assert stats.inputs == 1
        assert stats.outputs == 1
        assert stats.total_accesses == 5

    def test_addresses_touched(self):
        stats = MemoryStats()
        stats.record(0, 7)
        stats.record(1, 7)
        stats.record(0, 9)
        assert stats.addresses_touched == {7, 9}


class TestSimulationStats:
    def test_cycle_and_evaluation_counters(self):
        stats = SimulationStats()
        stats.record_cycle()
        stats.record_cycle()
        stats.record_evaluation(3)
        assert stats.cycles == 2
        assert stats.component_evaluations == 3

    def test_memory_access_aggregation(self):
        stats = SimulationStats()
        stats.record_memory_access("ram", 1, 0)
        stats.record_memory_access("ram", 0, 1)
        stats.record_memory_access("rom", 0, 2)
        assert stats.memory("ram").writes == 1
        assert stats.total_memory_accesses == 3
        assert stats.total_memory_reads == 2
        assert stats.total_memory_writes == 1

    def test_alu_and_selector_usage(self):
        stats = SimulationStats()
        stats.record_alu_function(4)
        stats.record_alu_function(4)
        stats.record_selector_case("decode", 3)
        assert stats.alu_function_usage[4] == 2
        assert stats.selector_case_usage["decode"][3] == 1

    def test_summary_mentions_memories(self):
        stats = SimulationStats()
        stats.record_cycle()
        stats.record_memory_access("ram", 1, 5)
        summary = stats.summary()
        assert "cycles executed" in summary
        assert "ram" in summary

    def test_memory_accessor_creates_entry(self):
        stats = SimulationStats()
        assert stats.memory("fresh").total_accesses == 0
        assert "fresh" in stats.memories
