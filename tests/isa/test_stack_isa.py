"""Unit tests for the stack machine instruction set."""

import pytest

from repro.errors import AssemblyError
from repro.isa import stack_isa
from repro.isa.stack_isa import Instruction, Op


class TestEncoding:
    def test_opcode_in_high_bits(self):
        word = stack_isa.encode(Op.PUSH, 5)
        assert word == (0 << 16) | 5
        word = stack_isa.encode(Op.JMP, 0x1234)
        assert word >> 16 == int(Op.JMP)
        assert word & 0xFFFF == 0x1234

    def test_decode_round_trip(self):
        for op in Op:
            operand = 17 if op in stack_isa.OPERAND_OPCODES else 0
            word = stack_isa.encode(op, operand)
            decoded = stack_isa.decode(word)
            assert decoded.op is op
            assert decoded.operand == operand

    def test_operand_range_checked(self):
        with pytest.raises(AssemblyError):
            stack_isa.encode(Op.PUSH, 1 << 16)

    def test_operand_on_wrong_opcode_rejected(self):
        with pytest.raises(AssemblyError):
            Instruction(Op.ADD, 5)

    def test_decode_unknown_opcode_rejected(self):
        with pytest.raises(AssemblyError):
            stack_isa.decode(200 << 16)

    def test_render(self):
        assert Instruction(Op.PUSH, 3).render() == "PUSH 3"
        assert Instruction(Op.HALT).render() == "HALT"


class TestTables:
    def test_opcode_count(self):
        assert stack_isa.OPCODE_COUNT == 18

    def test_mnemonics_cover_all_opcodes(self):
        assert set(stack_isa.mnemonics().values()) == set(Op)

    def test_alu_opcodes_use_valid_functions(self):
        from repro.rtl.alu_ops import is_valid_function

        for op, funct in stack_isa.ALU_OPCODES.items():
            assert op in Op
            assert is_valid_function(funct)

    def test_stack_effect_covers_all_opcodes(self):
        assert set(stack_isa.STACK_EFFECT) == set(Op)

    def test_stack_effects_consistent_with_semantics(self):
        assert stack_isa.STACK_EFFECT[Op.PUSH] == 1
        assert stack_isa.STACK_EFFECT[Op.ADD] == -1
        assert stack_isa.STACK_EFFECT[Op.STORE] == -2
        assert stack_isa.STACK_EFFECT[Op.SWAP] == 0

    def test_operand_opcodes(self):
        assert stack_isa.OPERAND_OPCODES == {Op.PUSH, Op.JMP, Op.JZ}
