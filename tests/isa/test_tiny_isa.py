"""Unit tests for the tiny computer instruction set (Appendix F encoding)."""

import pytest

from repro.errors import AssemblyError
from repro.isa import tiny_isa
from repro.isa.tiny_isa import TinyInstruction, TinyOp


class TestEncoding:
    def test_appendix_f_macro_values(self):
        # The thesis defines ~LD 256 ~ST 384 ~BB 512 ~BR 640 ~SU 768.
        for name, value in tiny_isa.APPENDIX_F_MACROS.items():
            assert tiny_isa.encode(TinyOp[name], 0) == value

    def test_address_in_low_bits(self):
        word = tiny_isa.encode(TinyOp.LD, 30)
        assert word == 256 + 30

    def test_decode_round_trip(self):
        for op in TinyOp:
            for address in (0, 1, 127):
                decoded = tiny_isa.decode(tiny_isa.encode(op, address))
                assert decoded.op is op
                assert decoded.address == address

    def test_decode_data_word_returns_none(self):
        assert tiny_isa.decode(0) is None          # opcode field 0 is not defined
        assert tiny_isa.decode(127) is None

    def test_address_range_checked(self):
        with pytest.raises(AssemblyError):
            tiny_isa.encode(TinyOp.LD, 128)

    def test_render(self):
        assert TinyInstruction(TinyOp.SU, 31).render() == "SU 31"


class TestConstants:
    def test_memory_geometry(self):
        assert tiny_isa.MEMORY_CELLS == 128
        assert tiny_isa.ADDRESS_BITS == 7
        assert tiny_isa.OUTPUT_ADDRESS == 127

    def test_mnemonics(self):
        assert set(tiny_isa.MNEMONICS) == {"LD", "ST", "BB", "BR", "SU"}
