"""Unit tests for the instruction-set-level (ISP) simulators."""

import pytest

from repro.errors import SimulationError
from repro.isa.assembler import assemble_stack_program, assemble_tiny_program
from repro.isa.isp import StackIspSimulator, TinyIspSimulator


class TestStackIsp:
    def run(self, source, **kwargs):
        return StackIspSimulator(assemble_stack_program(source), **kwargs).run()

    def test_arithmetic(self):
        result = self.run("PUSH 6\nPUSH 7\nMUL\nOUT\nHALT\n")
        assert result.outputs == [42]
        assert result.halted

    def test_stack_manipulation(self):
        result = self.run("PUSH 1\nPUSH 2\nSWAP\nOUT\nOUT\nHALT\n")
        assert result.outputs == [1, 2]

    def test_dup_and_drop(self):
        result = self.run("PUSH 5\nDUP\nADD\nPUSH 9\nDROP\nOUT\nHALT\n")
        assert result.outputs == [10]

    def test_memory_load_store(self):
        result = self.run(
            "PUSH 99\nPUSH 7\nSTORE\nPUSH 7\nLOAD\nOUT\nHALT\n"
        )
        assert result.outputs == [99]
        assert result.data_memory[7] == 99

    def test_conditional_branches(self):
        source = """
            PUSH 0
            JZ TAKEN
            PUSH 111
            OUT
        TAKEN: PUSH 222
            OUT
            HALT
        """
        assert self.run(source).outputs == [222]

    def test_comparison_and_loop(self):
        # count down from 3, outputting each value
        source = """
        .equ N 0
                PUSH 3
                PUSH N
                STORE
        LOOP:   PUSH N
                LOAD
                JZ DONE
                PUSH N
                LOAD
                OUT
                PUSH N
                LOAD
                PUSH 1
                SUB
                PUSH N
                STORE
                JMP LOOP
        DONE:   HALT
        """
        assert self.run(source).outputs == [3, 2, 1]

    def test_underflow_detected(self):
        with pytest.raises(SimulationError):
            self.run("ADD\nHALT\n")

    def test_runaway_pc_detected(self):
        with pytest.raises(SimulationError):
            self.run("PUSH 1\n")   # falls off the end

    def test_instruction_budget(self):
        program = assemble_stack_program("LOOP: JMP LOOP\n")
        result = StackIspSimulator(program).run(max_instructions=50)
        assert result.instructions_executed == 50
        assert not result.halted

    def test_instruction_count(self):
        result = self.run("PUSH 1\nPUSH 2\nADD\nOUT\nHALT\n")
        assert result.instructions_executed == 5


class TestTinyIsp:
    def test_division_by_repeated_subtraction(self):
        from repro.machines.tiny_computer import division_program

        result = TinyIspSimulator(division_program(100, 7)).run()
        assert result.outputs == [14]
        assert result.halted

    def test_store_to_output_address(self):
        source = ".equ OUT 127\nLD V\nST OUT\nH: BR H\nV: .word 9\n"
        result = TinyIspSimulator(assemble_tiny_program(source)).run()
        assert result.outputs == [9]

    def test_borrow_controls_branch(self):
        source = """
        .equ OUT 127
            LD A
            SU B
            BB NEG
            LD ONE
            ST OUT
            BR H
        NEG: LD TWO
            ST OUT
        H:  BR H
        A:  .word 3
        B:  .word 5
        ONE: .word 1
        TWO: .word 2
        """
        result = TinyIspSimulator(assemble_tiny_program(source)).run()
        assert result.outputs == [2]    # 3 - 5 borrows

    def test_halt_is_branch_to_self(self):
        result = TinyIspSimulator(assemble_tiny_program("H: BR H\n")).run()
        assert result.halted
        assert result.instructions_executed == 1

    def test_program_too_large_rejected(self):
        with pytest.raises(SimulationError):
            TinyIspSimulator(list(range(300)))

    def test_data_word_is_skipped(self):
        result = TinyIspSimulator([7, tiny_encode_halt()]).run()
        assert result.halted


def tiny_encode_halt():
    from repro.isa import tiny_isa

    return tiny_isa.encode(tiny_isa.TinyOp.BR, 1)
