"""Unit tests for the two-pass assemblers."""

import pytest

from repro.errors import AssemblyError
from repro.isa import stack_isa, tiny_isa
from repro.isa.assembler import assemble_stack_program, assemble_tiny_program


class TestStackAssembler:
    def test_simple_program(self):
        program = assemble_stack_program("PUSH 3\nPUSH 4\nADD\nOUT\nHALT\n")
        assert len(program) == 5
        assert stack_isa.decode(program.word(0)).op is stack_isa.Op.PUSH
        assert stack_isa.decode(program.word(2)).op is stack_isa.Op.ADD

    def test_labels_resolve_forward_and_backward(self):
        source = """
        START:  PUSH 1
                JZ END
                JMP START
        END:    HALT
        """
        program = assemble_stack_program(source)
        assert program.address_of("START") == 0
        assert program.address_of("END") == 3
        assert stack_isa.decode(program.word(1)).operand == 3
        assert stack_isa.decode(program.word(2)).operand == 0

    def test_equ_symbols(self):
        program = assemble_stack_program(".equ FLAGS 10\nPUSH FLAGS\nHALT\n")
        assert stack_isa.decode(program.word(0)).operand == 10

    def test_label_arithmetic(self):
        program = assemble_stack_program("A: PUSH 0\nPUSH A+3\nHALT\n")
        assert stack_isa.decode(program.word(1)).operand == 3

    def test_comments_and_blank_lines(self):
        program = assemble_stack_program(
            "; leading comment\n\nPUSH 1 ; trailing\n   \nHALT\n"
        )
        assert len(program) == 2

    def test_case_insensitive_mnemonics(self):
        program = assemble_stack_program("push 9\nhalt\n")
        assert stack_isa.decode(program.word(0)).operand == 9

    def test_listing_produced(self):
        program = assemble_stack_program("PUSH 1\nHALT\n")
        assert program.listing[0].endswith("PUSH 1")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError):
            assemble_stack_program("FROB 1\n")

    def test_unknown_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble_stack_program("JMP NOWHERE\n")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble_stack_program("X: HALT\nX: HALT\n")

    def test_missing_operand_rejected(self):
        with pytest.raises(AssemblyError):
            assemble_stack_program("PUSH\n")

    def test_unexpected_operand_rejected(self):
        with pytest.raises(AssemblyError):
            assemble_stack_program("ADD 3\n")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble_stack_program("PUSH 1\nBROKEN\n")
        assert "line 2" in str(excinfo.value)

    def test_label_only_line(self):
        program = assemble_stack_program("LOOP:\nJMP LOOP\n")
        assert program.address_of("LOOP") == 0


class TestTinyAssembler:
    def test_instructions_and_data(self):
        source = """
        START: LD A
               SU B
               ST A
               BR START
        A:     .word 50
        B:     .word 8
        """
        program = assemble_tiny_program(source)
        assert len(program) == 6
        assert program.word(0) == tiny_isa.encode(tiny_isa.TinyOp.LD, 4)
        assert program.word(4) == 50

    def test_equ_and_label_mix(self):
        program = assemble_tiny_program(".equ OUT 127\nLD V\nST OUT\nV: .word 3\n")
        assert program.word(1) == tiny_isa.encode(tiny_isa.TinyOp.ST, 127)

    def test_word_values_can_exceed_ten_bits(self):
        # NEG1 = 2**31 - 1 is stored as plain data (increment-by-subtraction trick)
        program = assemble_tiny_program("N: .word 2147483647\n")
        assert program.word(0) == 2147483647

    def test_missing_operand_rejected(self):
        with pytest.raises(AssemblyError):
            assemble_tiny_program("LD\n")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError):
            assemble_tiny_program("NOP 3\n")

    def test_program_too_large_rejected(self):
        source = "\n".join(f"X{i}: .word {i}" for i in range(200))
        with pytest.raises(AssemblyError):
            assemble_tiny_program(source)

    def test_address_of_unknown_label(self):
        program = assemble_tiny_program("LD X\nX: .word 1\n")
        with pytest.raises(AssemblyError):
            program.address_of("missing")
