"""Integration-style tests for the small bundled machines."""

import pytest

from repro.core.comparison import compare_backends
from repro.core.simulator import Simulator
from repro.errors import SpecificationError
from repro.machines.counter import build_counter_spec, expected_counter_values
from repro.machines.fibonacci import build_fibonacci_spec, expected_fibonacci_values
from repro.machines.gcd import build_gcd_spec, cycles_to_converge, expected_gcd
from repro.machines.traffic_light import (
    LAMP_VALUES,
    STATE_GREEN,
    build_traffic_light_spec,
    expected_states,
)


class TestCounter:
    @pytest.mark.parametrize("backend", ["interpreter", "compiled"])
    def test_counts_and_wraps(self, backend):
        spec = build_counter_spec(width_bits=3)
        result = Simulator(spec, backend=backend).run(cycles=20, trace=True)
        assert result.trace.values_of("count") == expected_counter_values(3, 20)

    def test_output_port_mirrors_count(self):
        spec = build_counter_spec(width_bits=4)
        result = Simulator(spec).run(cycles=10)
        assert result.output_integers() == expected_counter_values(4, 10)

    def test_width_validation(self):
        with pytest.raises(SpecificationError):
            build_counter_spec(width_bits=0)
        with pytest.raises(SpecificationError):
            build_counter_spec(width_bits=31)

    def test_no_output_variant(self):
        spec = build_counter_spec(output_every_cycle=False)
        result = Simulator(spec).run(cycles=5)
        assert result.outputs == []

    def test_backends_agree(self):
        assert compare_backends(build_counter_spec(), cycles=40).equivalent


class TestFibonacci:
    def test_sequence(self):
        result = Simulator(build_fibonacci_spec()).run(cycles=15, trace=True)
        assert result.trace.values_of("a") == expected_fibonacci_values(15)

    def test_output_port(self):
        result = Simulator(build_fibonacci_spec()).run(cycles=10)
        assert result.output_integers() == expected_fibonacci_values(10)

    def test_wraps_at_31_bits(self):
        values = expected_fibonacci_values(80)
        assert all(0 <= value < 2 ** 31 for value in values)
        result = Simulator(build_fibonacci_spec()).run(cycles=80, trace=True)
        assert result.trace.values_of("a") == values

    def test_backends_agree(self):
        assert compare_backends(build_fibonacci_spec(), cycles=30).equivalent


class TestGcd:
    @pytest.mark.parametrize("a,b", [(252, 105), (17, 5), (8, 8), (1, 9), (100, 75)])
    def test_converges_to_gcd(self, a, b):
        spec = build_gcd_spec(a, b)
        result = Simulator(spec).run(cycles=cycles_to_converge(a, b))
        assert result.value("a") == expected_gcd(a, b)
        assert result.value("b") == expected_gcd(a, b)
        assert result.value("done") == 1

    def test_stays_stable_after_convergence(self):
        spec = build_gcd_spec(12, 18)
        result = Simulator(spec).run(cycles=cycles_to_converge(12, 18) + 50)
        assert result.value("a") == 6

    def test_invalid_operands_rejected(self):
        with pytest.raises(SpecificationError):
            build_gcd_spec(0, 5)
        with pytest.raises(SpecificationError):
            build_gcd_spec(5, -1)

    def test_backends_agree(self):
        assert compare_backends(build_gcd_spec(36, 28), cycles=20).equivalent


class TestTrafficLight:
    def test_state_sequence(self):
        spec = build_traffic_light_spec(green_cycles=4, yellow_cycles=2, red_cycles=3)
        result = Simulator(spec).run(cycles=27, trace=True)
        assert result.trace.values_of("state") == expected_states(27, 4, 2, 3)

    def test_lamp_outputs_track_state(self):
        spec = build_traffic_light_spec(green_cycles=2, yellow_cycles=1, red_cycles=1)
        result = Simulator(spec).run(cycles=12, trace=True)
        states = result.trace.values_of("state")
        lamps = result.trace.values_of("lamps")
        assert all(LAMP_VALUES[state] == lamp for state, lamp in zip(states, lamps))

    def test_starts_green(self):
        result = Simulator(build_traffic_light_spec()).run(cycles=1, trace=True)
        assert result.trace.values_of("state") == [STATE_GREEN]

    def test_dwell_validation(self):
        with pytest.raises(SpecificationError):
            build_traffic_light_spec(green_cycles=0)

    def test_backends_agree(self):
        assert compare_backends(build_traffic_light_spec(), cycles=30).equivalent
