"""Tests for the bundled-machine registry."""

import pytest

from repro.core.simulator import Simulator
from repro.machines.library import all_machines, get_machine, machine_names


class TestRegistry:
    def test_expected_machines_present(self):
        names = machine_names()
        assert "counter" in names
        assert "stack-machine-sieve" in names
        assert "tiny-computer" in names
        assert len(names) == len(set(names)) >= 6

    def test_get_machine(self):
        entry = get_machine("counter")
        assert entry.name == "counter"
        assert entry.demo_cycles > 0

    def test_unknown_machine_rejected(self):
        with pytest.raises(KeyError):
            get_machine("cray-1")

    def test_every_entry_builds_and_runs(self):
        for entry in all_machines():
            spec = entry.build()
            cycles = min(entry.demo_cycles, 200)
            result = Simulator(spec, backend="interpreter").run(cycles=cycles)
            assert result.cycles_run == cycles

    def test_descriptions_are_informative(self):
        for entry in all_machines():
            assert len(entry.description) > 10
