"""Tests for the Sieve of Eratosthenes workload (the Figure 5.1 program)."""

import pytest

from repro.core.simulator import Simulator
from repro.isa.isp import StackIspSimulator
from repro.machines.sieve import (
    expected_outputs,
    expected_primes,
    prepare_sieve_workload,
    sieve_assembly,
    sieve_program,
)
from repro.machines.stack_machine import build_stack_machine


class TestReferenceModel:
    def test_small_prime_lists(self):
        assert expected_primes(1) == [3, 5]
        assert expected_primes(5) == [3, 5, 7, 11, 13]

    def test_composites_excluded(self):
        primes = expected_primes(20)
        assert 9 not in primes and 15 not in primes and 21 not in primes
        assert primes[-1] <= 2 * 20 + 3

    def test_outputs_end_with_count(self):
        outputs = expected_outputs(10)
        assert outputs[-1] == len(outputs) - 1

    def test_size_validation(self):
        with pytest.raises(ValueError):
            sieve_assembly(0)


class TestIspExecution:
    @pytest.mark.parametrize("size", [1, 4, 10, 20])
    def test_isp_matches_reference(self, size):
        result = StackIspSimulator(sieve_program(size)).run()
        assert result.halted
        assert result.outputs == expected_outputs(size)

    def test_workload_preparation(self):
        workload = prepare_sieve_workload(8)
        assert workload.outputs == expected_outputs(8)
        assert workload.instructions_executed > 100
        assert workload.cycles_needed >= 4 * workload.instructions_executed

    def test_flags_array_consistent(self):
        size = 12
        result = StackIspSimulator(sieve_program(size)).run()
        from repro.machines.sieve import FLAGS_BASE

        flags = result.data_memory[FLAGS_BASE : FLAGS_BASE + size + 1]
        primes = [2 * i + 3 for i, flag in enumerate(flags) if flag]
        assert primes == expected_primes(size)


class TestRtlExecution:
    @pytest.mark.parametrize("backend", ["interpreter", "compiled"])
    def test_rtl_machine_reproduces_reference(self, backend):
        workload = prepare_sieve_workload(6)
        machine = build_stack_machine(workload.program)
        result = Simulator(machine.spec, backend=backend).run(
            cycles=workload.cycles_needed
        )
        assert result.output_integers() == workload.outputs

    def test_paper_scale_workload_runs_5545_cycles(self):
        """Size 20 gives a workload of the same order as the paper's 5545 cycles."""
        workload = prepare_sieve_workload(20)
        assert 4000 <= workload.cycles_needed <= 8000
        machine = build_stack_machine(workload.program)
        result = Simulator(machine.spec, backend="compiled").run(cycles=5545)
        produced = result.output_integers()
        # after exactly 5545 cycles nearly the whole prime list has appeared
        assert produced == workload.outputs[: len(produced)]
        assert len(produced) >= len(expected_primes(20)) - 2
