"""Tests for the microcoded stack machine (RTL vs ISP golden model)."""

import pytest

from repro.core.comparison import compare_backends
from repro.core.simulator import Simulator
from repro.errors import SpecificationError
from repro.isa.assembler import assemble_stack_program
from repro.isa.isp import StackIspSimulator
from repro.machines.stack_machine import (
    CYCLES_PER_INSTRUCTION,
    build_stack_machine,
    build_stack_machine_spec,
    cycles_for_instructions,
)


def run_rtl(source, backend="compiled", **build_kwargs):
    """Assemble, measure with the ISP model, then run the RTL machine."""
    program = assemble_stack_program(source)
    golden = StackIspSimulator(program).run()
    machine = build_stack_machine(program, **build_kwargs)
    cycles = machine.cycles_for(golden.instructions_executed)
    result = Simulator(machine.spec, backend=backend).run(cycles=cycles)
    return golden, result


class TestConstruction:
    def test_spec_shape(self):
        machine = build_stack_machine(assemble_stack_program("HALT\n"))
        spec = machine.spec
        assert {"pc", "sp", "tos", "nos", "ir", "phase"} <= set(spec.component_names())
        assert {"prog", "stack", "dmem", "outport"} <= set(spec.component_names())

    def test_program_padded_to_power_of_two(self):
        machine = build_stack_machine(assemble_stack_program("PUSH 1\nOUT\nHALT\n"))
        assert machine.program_size == 4
        rom = machine.spec.component("prog")
        assert rom.size == 4

    def test_empty_program_rejected(self):
        with pytest.raises(SpecificationError):
            build_stack_machine([])

    def test_non_power_of_two_sizes_rejected(self):
        program = assemble_stack_program("HALT\n")
        with pytest.raises(SpecificationError):
            build_stack_machine(program, data_size=100)
        with pytest.raises(SpecificationError):
            build_stack_machine(program, stack_size=300)

    def test_cycles_helper(self):
        assert cycles_for_instructions(10, slack_instructions=0) == 40
        assert CYCLES_PER_INSTRUCTION == 4

    def test_trace_names(self):
        program = assemble_stack_program("HALT\n")
        spec = build_stack_machine_spec(program, trace=("pc", "tos"))
        assert spec.traced_names == ["pc", "tos"]


class TestInstructionSemantics:
    """Each test exercises specific opcodes and checks against the ISP model."""

    @pytest.mark.parametrize(
        "source",
        [
            "PUSH 6\nPUSH 7\nADD\nOUT\nHALT\n",
            "PUSH 10\nPUSH 3\nSUB\nOUT\nHALT\n",
            "PUSH 6\nPUSH 7\nMUL\nOUT\nHALT\n",
            "PUSH 3\nPUSH 7\nLT\nOUT\nPUSH 7\nPUSH 3\nLT\nOUT\nHALT\n",
            "PUSH 5\nPUSH 5\nEQ\nOUT\nHALT\n",
            "PUSH 12\nPUSH 10\nAND\nOUT\nHALT\n",
            "PUSH 12\nPUSH 10\nOR\nOUT\nHALT\n",
            "PUSH 12\nPUSH 10\nXOR\nOUT\nHALT\n",
        ],
        ids=["add", "sub", "mul", "lt", "eq", "and", "or", "xor"],
    )
    def test_binary_operators(self, source):
        golden, result = run_rtl(source)
        assert result.output_integers() == golden.outputs

    def test_stack_manipulation(self):
        source = "PUSH 1\nPUSH 2\nPUSH 3\nSWAP\nOUT\nOUT\nOUT\nHALT\n"
        golden, result = run_rtl(source)
        assert result.output_integers() == golden.outputs == [2, 3, 1]

    def test_dup_and_drop(self):
        source = "PUSH 8\nDUP\nADD\nPUSH 99\nDROP\nOUT\nHALT\n"
        golden, result = run_rtl(source)
        assert result.output_integers() == golden.outputs == [16]

    def test_load_store(self):
        source = "PUSH 44\nPUSH 9\nSTORE\nPUSH 9\nLOAD\nOUT\nHALT\n"
        golden, result = run_rtl(source)
        assert result.output_integers() == [44]
        assert result.memory("dmem")[9] == 44

    def test_deep_stack(self):
        pushes = "\n".join(f"PUSH {i}" for i in range(1, 9))
        adds = "\n".join("ADD" for _ in range(7))
        source = f"{pushes}\n{adds}\nOUT\nHALT\n"
        golden, result = run_rtl(source)
        assert result.output_integers() == [36]

    def test_jumps_and_conditionals(self):
        source = """
                PUSH 0
                JZ TAKEN
                PUSH 111
                OUT
        TAKEN:  PUSH 1
                JZ NOTTAKEN
                PUSH 222
                OUT
        NOTTAKEN: HALT
        """
        golden, result = run_rtl(source)
        assert result.output_integers() == golden.outputs == [222]

    def test_loop_counts_down(self):
        source = """
        .equ N 0
                PUSH 5
                PUSH N
                STORE
        LOOP:   PUSH N
                LOAD
                JZ DONE
                PUSH N
                LOAD
                OUT
                PUSH N
                LOAD
                PUSH 1
                SUB
                PUSH N
                STORE
                JMP LOOP
        DONE:   HALT
        """
        golden, result = run_rtl(source)
        assert result.output_integers() == golden.outputs == [5, 4, 3, 2, 1]

    def test_halt_holds_machine(self):
        program = assemble_stack_program("PUSH 7\nOUT\nHALT\n")
        machine = build_stack_machine(program)
        result = Simulator(machine.spec).run(cycles=400)
        # stays halted: exactly one output even after many extra cycles
        assert result.output_integers() == [7]

    def test_interpreter_and_compiled_agree_cycle_by_cycle(self):
        program = assemble_stack_program("PUSH 2\nPUSH 3\nADD\nOUT\nHALT\n")
        spec = build_stack_machine_spec(program, trace=("pc", "tos", "sp", "phase"))
        comparison = compare_backends(spec, cycles=40)
        assert comparison.equivalent


class TestMicroarchitecture:
    def test_four_cycles_per_instruction(self):
        program = assemble_stack_program("PUSH 1\nPUSH 2\nADD\nOUT\nHALT\n")
        spec = build_stack_machine_spec(program, trace=("pc",))
        result = Simulator(spec, backend="interpreter").run(cycles=20, trace=True)
        pcs = result.trace.values_of("pc")
        # the pc changes exactly every CYCLES_PER_INSTRUCTION cycles
        # the pc is written during the execute phase and becomes visible one
        # cycle later, so it advances on cycles 3, 7, 11, ... — one step per
        # 4-cycle instruction
        changes = [i for i in range(1, len(pcs)) if pcs[i] != pcs[i - 1]]
        assert changes == [3, 7, 11, 15]

    def test_phase_counter_cycles(self):
        program = assemble_stack_program("HALT\n")
        spec = build_stack_machine_spec(program, trace=("phase",))
        result = Simulator(spec, backend="interpreter").run(cycles=9, trace=True)
        assert result.trace.values_of("phase") == [0, 1, 2, 3, 0, 1, 2, 3, 0]
