"""Tests for the Appendix-F tiny computer (RTL vs ISP golden model)."""

import pytest

from repro.core.comparison import compare_backends
from repro.core.simulator import Simulator
from repro.errors import SpecificationError
from repro.isa import tiny_isa
from repro.isa.assembler import assemble_tiny_program
from repro.isa.isp import TinyIspSimulator
from repro.machines.tiny_computer import (
    CYCLES_PER_INSTRUCTION,
    build_tiny_computer,
    build_tiny_computer_spec,
    division_assembly,
    division_program,
    prepare_division_workload,
)


def run_rtl(source, backend="compiled"):
    program = assemble_tiny_program(source)
    golden = TinyIspSimulator(program).run()
    machine = build_tiny_computer(program)
    cycles = machine.cycles_for(golden.instructions_executed)
    result = Simulator(machine.spec, backend=backend).run(cycles=cycles)
    return golden, result


class TestConstruction:
    def test_spec_shape(self):
        machine = build_tiny_computer(assemble_tiny_program("H: BR H\n"))
        names = set(machine.spec.component_names())
        assert {"pc", "ir", "ac", "borrow", "phase", "mem", "outport"} <= names

    def test_memory_is_128_cells(self):
        machine = build_tiny_computer(assemble_tiny_program("H: BR H\n"))
        assert machine.spec.component("mem").size == tiny_isa.MEMORY_CELLS

    def test_empty_program_rejected(self):
        with pytest.raises(SpecificationError):
            build_tiny_computer([])

    def test_oversized_program_rejected(self):
        with pytest.raises(SpecificationError):
            build_tiny_computer(list(range(200)))

    def test_cycles_per_instruction(self):
        assert CYCLES_PER_INSTRUCTION == 4


class TestInstructionSemantics:
    def test_load_store_output(self):
        source = ".equ OUT 127\nLD V\nST OUT\nH: BR H\nV: .word 55\n"
        golden, result = run_rtl(source)
        assert result.output_integers() == golden.outputs == [55]

    def test_store_updates_memory(self):
        source = "LD V\nST D\nH: BR H\nV: .word 9\nD: .word 0\n"
        golden, result = run_rtl(source)
        data_address = assemble_tiny_program(source).address_of("D")
        assert result.memory("mem")[data_address] == 9

    def test_subtract_without_borrow(self):
        source = ".equ OUT 127\nLD A\nSU B\nST OUT\nH: BR H\nA: .word 9\nB: .word 4\n"
        golden, result = run_rtl(source)
        assert result.output_integers() == [5]

    def test_branch_on_borrow_taken(self):
        source = """
        .equ OUT 127
            LD A
            SU B
            BB NEG
            LD ONE
            ST OUT
            BR H
        NEG: LD TWO
            ST OUT
        H:  BR H
        A:  .word 3
        B:  .word 5
        ONE: .word 1
        TWO: .word 2
        """
        golden, result = run_rtl(source)
        assert result.output_integers() == golden.outputs == [2]

    def test_branch_on_borrow_not_taken(self):
        source = """
        .equ OUT 127
            LD A
            SU B
            BB NEG
            LD ONE
            ST OUT
            BR H
        NEG: LD TWO
            ST OUT
        H:  BR H
        A:  .word 9
        B:  .word 5
        ONE: .word 1
        TWO: .word 2
        """
        golden, result = run_rtl(source)
        assert result.output_integers() == [1]

    def test_unconditional_branch(self):
        source = """
        .equ OUT 127
            BR SKIP
            LD BAD
            ST OUT
        SKIP: LD GOOD
            ST OUT
        H:  BR H
        BAD: .word 666
        GOOD: .word 42
        """
        golden, result = run_rtl(source)
        assert result.output_integers() == [42]


class TestDivisionWorkload:
    @pytest.mark.parametrize("dividend,divisor", [(100, 7), (60, 7), (21, 3), (5, 9)])
    def test_quotients(self, dividend, divisor):
        workload = prepare_division_workload(dividend, divisor)
        assert workload.outputs == [dividend // divisor]
        machine = build_tiny_computer(workload.program)
        result = Simulator(machine.spec).run(cycles=workload.cycles_needed)
        assert result.output_integers() == [dividend // divisor]

    def test_invalid_operands_rejected(self):
        with pytest.raises(ValueError):
            division_assembly(10, 0)

    def test_division_program_fits_memory(self):
        assert len(division_program(100, 7)) <= tiny_isa.MEMORY_CELLS

    def test_backends_agree(self):
        workload = prepare_division_workload(30, 4)
        spec = build_tiny_computer_spec(workload.program, trace=("pc", "ac", "borrow"))
        assert compare_backends(spec, cycles=workload.cycles_needed).equivalent
