"""Unit tests for serialising specifications back to source text."""

from repro.rtl.parser import parse_spec
from repro.rtl.writer import component_to_text, spec_to_text


class TestRoundTrip:
    def test_counter_round_trips(self, counter_spec):
        text = spec_to_text(counter_spec)
        again = parse_spec(text)
        assert again.component_names() == counter_spec.component_names()
        assert again.traced_names == counter_spec.traced_names
        for name in counter_spec.component_names():
            assert type(again.component(name)) is type(counter_spec.component(name))

    def test_memory_initial_values_round_trip(self, figure_4_3_spec):
        again = parse_spec(spec_to_text(figure_4_3_spec), validate=False)
        memory = again.component("memory")
        assert memory.initial_values == (12, 34, 56, 78)
        assert memory.size == 4

    def test_cycles_round_trip(self):
        spec = parse_spec("# t\n= 123\nx .\nA x 0 0 0\n.")
        again = parse_spec(spec_to_text(spec))
        assert again.cycles == 123

    def test_expressions_survive(self, counter_spec):
        again = parse_spec(spec_to_text(counter_spec))
        assert again.component("wrapped").right.constant_value() == 7
        assert again.component("next").left.to_spec() == "count"


class TestFormatting:
    def test_header_always_starts_with_hash(self, counter_spec):
        assert spec_to_text(counter_spec).startswith("#")

    def test_ends_with_terminator(self, counter_spec):
        assert spec_to_text(counter_spec).rstrip().endswith(".")

    def test_traced_names_get_star(self, counter_spec):
        assert "count*" in spec_to_text(counter_spec)

    def test_component_to_text_alu(self, counter_spec):
        assert component_to_text(counter_spec.component("next")) == "A next 4 count 1"

    def test_component_to_text_memory(self, counter_spec):
        assert component_to_text(counter_spec.component("count")) == "M count 0 wrapped 1 1"

    def test_component_to_text_selector(self, figure_4_2_spec):
        text = component_to_text(figure_4_2_spec.component("selector"))
        assert text.startswith("S selector index")
        assert text.endswith("value3")

    def test_memory_with_initial_values_uses_negative_count(self, figure_4_3_spec):
        text = component_to_text(figure_4_3_spec.component("memory"))
        assert "-4 12 34 56 78" in text


class TestBuilderSpecsRoundTrip:
    def test_stack_machine_round_trips(self):
        from repro.machines import build_stack_machine_spec, sieve_program

        spec = build_stack_machine_spec(sieve_program(3))
        again = parse_spec(spec_to_text(spec))
        assert set(again.component_names()) == set(spec.component_names())

    def test_simulation_equivalence_after_round_trip(self, counter_spec):
        from repro.core.comparison import compare_backends
        from repro.core.simulator import Simulator

        original = Simulator(counter_spec, backend="interpreter").run(cycles=20)
        reparsed = parse_spec(spec_to_text(counter_spec))
        again = Simulator(reparsed, backend="interpreter").run(cycles=20)
        assert original.output_integers() == again.output_integers()
        assert compare_backends(reparsed, cycles=20).equivalent
