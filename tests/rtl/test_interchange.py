"""Tests for the JSON spec interchange format (:mod:`repro.rtl.interchange`).

The load-bearing property: a round trip through the JSON document is
*identity-preserving* — for every bundled machine and for arbitrary
generated machines, ``spec_from_json(spec_to_json(spec))`` has the same
textual fingerprint (:func:`~repro.compiler.cache.spec_fingerprint`, the
DiskCache / PoolRegistry key) and the same lowered-IR fingerprint
(:func:`~repro.fuzz.differential.ir_fingerprint`, the artifact every
backend consumes) as the original.  The rest is the format's contract:
three accepted expression shapes, strict unknown-key rejection, size
limits, and structured :class:`~repro.errors.SpecFormatError` rejections
carrying JSON paths.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.cache import spec_fingerprint
from repro.errors import SpecFormatError
from repro.fuzz.differential import ir_fingerprint
from repro.fuzz.generator import generate_machine
from repro.machines.library import all_machines
from repro.rtl.interchange import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MAX_COMPONENTS,
    MAX_SELECTOR_CASES,
    MAX_TOTAL_MEMORY_CELLS,
    expression_from_json,
    expression_to_json,
    looks_like_json,
    spec_from_json,
    spec_from_json_text,
    spec_to_json,
    spec_to_json_text,
)
from repro.rtl.parser import parse_expression, parse_spec
from repro.rtl.writer import spec_to_text


def minimal_doc(**overrides):
    """A smallest valid document, with fields overridable per test."""
    doc = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "comment": "minimal",
        "components": [
            {"type": "memory", "name": "r", "address": 0, "data": "r",
             "operation": 1, "size": 1},
        ],
    }
    doc.update(overrides)
    return doc


class TestRoundTrip:
    @pytest.mark.parametrize(
        "machine_name", [entry.name for entry in all_machines()]
    )
    def test_bundled_machines_round_trip_identically(self, machine_name):
        spec = next(
            e for e in all_machines() if e.name == machine_name
        ).build()
        restored = spec_from_json(spec_to_json(spec))
        assert spec_fingerprint(restored) == spec_fingerprint(spec)
        assert ir_fingerprint(restored) == ir_fingerprint(spec)
        assert spec_to_text(restored) == spec_to_text(spec)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**9))
    def test_generated_machines_round_trip_identically(self, seed):
        spec = generate_machine(seed).spec
        restored = spec_from_json(spec_to_json(spec))
        assert spec_fingerprint(restored) == spec_fingerprint(spec)
        assert ir_fingerprint(restored) == ir_fingerprint(spec)

    def test_json_text_round_trip(self, counter_spec):
        restored = spec_from_json_text(spec_to_json_text(counter_spec))
        assert spec_fingerprint(restored) == spec_fingerprint(counter_spec)

    def test_double_round_trip_is_stable(self, counter_spec):
        once = spec_to_json(counter_spec)
        twice = spec_to_json(spec_from_json(once))
        assert once["components"] == twice["components"]
        assert once.get("declarations") == twice.get("declarations")

    def test_source_name_travels(self, counter_spec):
        doc = spec_to_json(counter_spec)
        doc["name"] = "my-machine"
        assert spec_from_json(doc).source_name == "my-machine"

    def test_cycles_and_trace_marks_travel(self, counter_spec):
        restored = spec_from_json(spec_to_json(counter_spec))
        assert restored.cycles == counter_spec.cycles
        assert [d.to_spec() for d in restored.declarations] == [
            d.to_spec() for d in counter_spec.declarations
        ]


class TestExpressionShapes:
    """The three accepted forms: paper text, bare int, typed node list."""

    @pytest.mark.parametrize("shape", [
        "count.0.2",
        [{"type": "ref", "name": "count", "low": 0, "high": 2}],
        {"type": "ref", "name": "count", "low": 0, "high": 2},
    ])
    def test_equivalent_shapes_build_the_same_expression(self, shape):
        expression = expression_from_json(shape, "$")
        assert expression.to_spec() == "count.0.2"

    def test_bare_int_is_a_constant(self):
        assert expression_from_json(7, "$").constant_value() == 7

    def test_node_list_concatenation_order_is_leftmost_first(self):
        expression = expression_from_json(
            [{"type": "ref", "name": "a"}, {"type": "const", "value": 1,
                                            "width": 3}],
            "$",
        )
        assert expression.to_spec() == "a,1.3"

    def test_bits_node(self):
        expression = expression_from_json(
            [{"type": "bits", "bits": "0101"}], "$"
        )
        assert expression.to_spec() == "#0101"

    def test_export_emits_canonical_nodes(self):
        nodes = expression_to_json(parse_expression("pc.0.6,1.3"))
        assert nodes == [
            {"type": "ref", "name": "pc", "low": 0, "high": 6},
            {"type": "const", "value": 1, "width": 3},
        ]


class TestStructuredErrors:
    """Every rejection is a SpecFormatError with a JSON path."""

    def test_non_dict_document(self):
        with pytest.raises(SpecFormatError, match=r"\$"):
            spec_from_json([1, 2, 3])

    def test_wrong_format_marker(self):
        with pytest.raises(SpecFormatError, match=r"\$\.format"):
            spec_from_json(minimal_doc(format="not-a-spec"))

    def test_unsupported_version(self):
        with pytest.raises(SpecFormatError, match=r"\$\.version"):
            spec_from_json(minimal_doc(version=FORMAT_VERSION + 1))

    def test_unknown_top_level_key(self):
        with pytest.raises(SpecFormatError, match="unknown key"):
            spec_from_json(minimal_doc(cylces=40))

    def test_unknown_component_key_carries_component_path(self):
        doc = minimal_doc()
        doc["components"][0]["extra"] = 1
        with pytest.raises(SpecFormatError,
                           match=r"\$\.components\[0\]") as excinfo:
            spec_from_json(doc)
        assert excinfo.value.path == "$.components[0]"

    def test_bad_expression_node_carries_field_path(self):
        doc = minimal_doc()
        doc["components"][0]["data"] = [{"type": "wat"}]
        with pytest.raises(SpecFormatError,
                           match=r"\$\.components\[0\]\.data\[0\]"):
            spec_from_json(doc)

    def test_unparsable_expression_text(self):
        doc = minimal_doc()
        doc["components"][0]["address"] = "1..2..3..4"
        with pytest.raises(SpecFormatError, match="did not parse"):
            spec_from_json(doc)

    def test_empty_expression_rejected(self):
        doc = minimal_doc()
        doc["components"][0]["data"] = []
        with pytest.raises(SpecFormatError, match="at least one field"):
            spec_from_json(doc)

    def test_unknown_component_type(self):
        doc = minimal_doc(components=[{"type": "fpga", "name": "x"}])
        with pytest.raises(SpecFormatError, match="'alu', 'selector'"):
            spec_from_json(doc)

    def test_empty_component_list(self):
        with pytest.raises(SpecFormatError, match="at least one component"):
            spec_from_json(minimal_doc(components=[]))

    def test_duplicate_component_names(self):
        doc = minimal_doc()
        doc["components"] = doc["components"] * 2
        with pytest.raises(SpecFormatError, match="more than once"):
            spec_from_json(doc)

    def test_dangling_reference_rejected_by_validation(self):
        doc = minimal_doc()
        doc["components"][0]["data"] = "ghost"
        with pytest.raises(SpecFormatError, match="ghost"):
            spec_from_json(doc)

    def test_validation_can_be_deferred(self):
        doc = minimal_doc()
        doc["components"][0]["data"] = "ghost"
        spec = spec_from_json(doc, validate=False)
        assert len(spec) == 1

    def test_booleans_are_not_integers(self):
        doc = minimal_doc()
        doc["components"][0]["size"] = True
        with pytest.raises(SpecFormatError, match="size"):
            spec_from_json(doc)

    def test_bad_json_text(self):
        with pytest.raises(SpecFormatError, match="not valid JSON"):
            spec_from_json_text("{nope")

    def test_declaration_object_form(self):
        doc = minimal_doc(declarations=[{"name": "r", "traced": True}])
        spec = spec_from_json(doc)
        assert spec.declarations[0].traced is True

    def test_declaration_bad_key(self):
        doc = minimal_doc(declarations=[{"name": "r", "trace": True}])
        with pytest.raises(SpecFormatError, match=r"declarations\[0\]"):
            spec_from_json(doc)


class TestAbuseGuards:
    def test_component_count_limit(self):
        components = [
            {"type": "alu", "name": f"a{i}", "function": 0, "left": 0,
             "right": 0}
            for i in range(MAX_COMPONENTS + 1)
        ]
        with pytest.raises(SpecFormatError, match="at most"):
            spec_from_json(minimal_doc(components=components))

    def test_memory_cell_limit(self):
        doc = minimal_doc()
        doc["components"][0]["size"] = MAX_TOTAL_MEMORY_CELLS + 1
        with pytest.raises(SpecFormatError, match="cells"):
            spec_from_json(doc)

    def test_selector_case_limit(self):
        doc = minimal_doc()
        doc["components"].insert(0, {
            "type": "selector", "name": "s", "select": "r",
            "cases": [0] * (MAX_SELECTOR_CASES + 1),
        })
        with pytest.raises(SpecFormatError, match="cases"):
            spec_from_json(doc)


class TestFormatDetection:
    def test_json_documents_detected(self, counter_spec):
        assert looks_like_json(spec_to_json_text(counter_spec))

    def test_paper_text_not_detected(self, counter_spec_text):
        assert not looks_like_json(counter_spec_text)


def test_fingerprint_ignores_presentation_but_not_semantics():
    """ir_fingerprint: source-text metadata out, semantic changes in."""
    base = parse_spec(
        "# fp\nr .\nA a 4 r 1\nM r 0 a 1 1\n.\n"
    )
    same = spec_from_json(spec_to_json(base))
    assert ir_fingerprint(same) == ir_fingerprint(base)
    different = parse_spec(
        "# fp\nr .\nA a 5 r 1\nM r 0 a 1 1\n.\n"
    )
    assert ir_fingerprint(different) != ir_fingerprint(base)
