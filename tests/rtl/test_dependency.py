"""Unit tests for dependency analysis and evaluation ordering."""

import pytest

from repro.errors import CircularDependencyError
from repro.rtl.dependency import (
    build_dependency_graph,
    dependency_depths,
    evaluation_order,
    has_combinational_cycle,
    sort_combinational,
)
from repro.rtl.parser import parse_spec


def order_names(spec):
    return [component.name for component in sort_combinational(spec)]


class TestGraph:
    def test_edges(self, counter_spec):
        graph = build_dependency_graph(counter_spec)
        assert graph.dependencies_of("wrapped") == {"next"}
        assert graph.dependencies_of("next") == set()
        assert graph.consumers_of("next") == {"wrapped"}

    def test_memory_references_create_no_edges(self, counter_spec):
        graph = build_dependency_graph(counter_spec)
        # "next" reads the memory "count": not an edge in the combinational graph
        assert "count" not in graph.dependencies_of("next")


class TestSorting:
    def test_simple_chain(self, counter_spec):
        assert order_names(counter_spec) == ["next", "wrapped"]

    def test_reversed_definition_order(self):
        spec = parse_spec(
            "# t\na b c .\n"
            "A c 4 b 1\n"
            "A b 4 a 1\n"
            "A a 4 reg 1\n"
            "M reg 0 c 1 1\n"
            ".",
        )
        assert order_names(spec) == ["a", "b", "c"]

    def test_sort_is_stable_for_independent_components(self):
        spec = parse_spec(
            "# t\nx y z .\nA x 0 0 0\nA y 0 0 0\nA z 0 0 0\n.",
        )
        assert order_names(spec) == ["x", "y", "z"]

    def test_diamond_dependency(self):
        spec = parse_spec(
            "# t\nsrc l r top .\n"
            "A top 4 l r\n"
            "A l 4 src 1\n"
            "A r 4 src 2\n"
            "A src 2 reg 0\n"
            "M reg 0 top 1 1\n"
            ".",
        )
        names = order_names(spec)
        assert names.index("src") < names.index("l")
        assert names.index("src") < names.index("r")
        assert names.index("l") < names.index("top")
        assert names.index("r") < names.index("top")

    def test_all_components_present_exactly_once(self):
        spec = parse_spec(
            "# t\na b c d .\n"
            "A a 2 reg 0\nA b 4 a 1\nS c b a b\nA d 4 c b\nM reg 0 d 1 1\n.",
        )
        names = order_names(spec)
        assert sorted(names) == ["a", "b", "c", "d"]

    def test_evaluation_order_appends_memories(self, counter_spec):
        names = [c.name for c in evaluation_order(counter_spec)]
        assert names == ["next", "wrapped", "count", "outport"]


class TestCycles:
    def make_cyclic(self):
        return parse_spec(
            "# t\na b .\nA a 4 b 1\nA b 4 a 1\n.", validate=False
        )

    def test_cycle_detected(self):
        spec = self.make_cyclic()
        assert has_combinational_cycle(spec)
        with pytest.raises(CircularDependencyError) as excinfo:
            sort_combinational(spec)
        assert set(excinfo.value.names) == {"a", "b"}

    def test_self_reference_detected(self):
        spec = parse_spec("# t\na .\nA a 4 a 1\n.", validate=False)
        with pytest.raises(CircularDependencyError):
            sort_combinational(spec)

    def test_memory_feedback_loop_is_fine(self, counter_spec):
        # count -> next -> wrapped -> count is fine because count is a memory
        assert not has_combinational_cycle(counter_spec)

    def test_error_message_names_components(self):
        with pytest.raises(CircularDependencyError) as excinfo:
            sort_combinational(self.make_cyclic())
        message = str(excinfo.value)
        assert "a" in message and "b" in message


class TestScaling:
    """The Kahn sort must stay linear-ish on large synthetic specs."""

    @staticmethod
    def build_chain_spec(length: int):
        """A 500-component dependency chain: worst case for a per-level
        rescan of the pending list (each level resolves one component)."""
        from repro.rtl.builder import SpecBuilder

        builder = SpecBuilder(f"chain of {length}")
        builder.alu("c0", 4, "reg", 1)
        for index in range(1, length):
            builder.alu(f"c{index}", 4, f"c{index - 1}", 1)
        builder.register("reg", data=f"c{length - 1}")
        return builder.build()

    def test_500_component_chain_sorts_correctly(self):
        import time

        spec = self.build_chain_spec(500)
        start = time.perf_counter()
        ordered = sort_combinational(spec)
        elapsed = time.perf_counter() - start
        names = [component.name for component in ordered]
        assert names == [f"c{i}" for i in range(500)]
        # O(V+E) sorts this instantly; the old O(V^2) rescan took ~250k
        # pending-list visits.  The generous bound keeps slow CI honest
        # without flaking.
        assert elapsed < 1.0, f"sort took {elapsed:.3f}s on a 500-chain"

    def test_wide_spec_stays_stable(self):
        # 500 independent components must come out in definition order
        from repro.rtl.builder import SpecBuilder

        builder = SpecBuilder("wide")
        for index in range(500):
            builder.alu(f"w{index}", 4, "reg", index)
        builder.register("reg", data="w0")
        spec = builder.build()
        names = [component.name for component in sort_combinational(spec)]
        assert names == [f"w{i}" for i in range(500)]

    def test_chain_simulates_end_to_end(self):
        # the ordering feeds every backend: a short run proves it is usable
        from repro.core.simulator import Simulator

        spec = self.build_chain_spec(64)
        result = Simulator(spec, backend="threaded").run(cycles=3)
        # after each cycle reg latches c63 = reg + 64; three cycles => 192
        assert result.value("reg") == 192


class TestDepths:
    def test_depths(self, counter_spec):
        depths = dependency_depths(counter_spec)
        assert depths["count"] == 0
        assert depths["next"] == 1
        assert depths["wrapped"] == 2

    def test_depths_on_stack_machine(self):
        from repro.machines import prepare_sieve_workload, build_stack_machine_spec

        spec = build_stack_machine_spec(prepare_sieve_workload(3).program)
        depths = dependency_depths(spec)
        # the critical path runs through opcode decode into the next-state logic
        assert depths["opcode"] >= 1
        assert depths["tosnext"] > depths["opcode"]
        assert max(depths.values()) >= 3
