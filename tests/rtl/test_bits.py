"""Unit tests for the bit-manipulation utilities."""

import pytest

from repro.rtl import bits


class TestWordConstants:
    def test_word_is_31_bits(self):
        assert bits.WORD_BITS == 31

    def test_word_mask_matches_paper_constant(self):
        # The generated Pascal code uses mask = 2147483647 (Appendix E).
        assert bits.WORD_MASK == 2147483647


class TestLand:
    def test_land_is_bitwise_and(self):
        assert bits.land(0b1100, 0b1010) == 0b1000

    def test_land_masks_to_word(self):
        assert bits.land(-1, -1) == bits.WORD_MASK

    def test_land_with_zero(self):
        assert bits.land(12345, 0) == 0


class TestMaskWord:
    def test_small_values_unchanged(self):
        assert bits.mask_word(42) == 42

    def test_wraps_overflow(self):
        assert bits.mask_word(2 ** 31) == 0
        assert bits.mask_word(2 ** 31 + 5) == 5

    def test_wraps_negative(self):
        assert bits.mask_word(-1) == bits.WORD_MASK


class TestMaskForWidth:
    def test_zero_width(self):
        assert bits.mask_for_width(0) == 0

    def test_small_widths(self):
        assert bits.mask_for_width(1) == 1
        assert bits.mask_for_width(4) == 0xF

    def test_width_at_or_above_word(self):
        assert bits.mask_for_width(31) == bits.WORD_MASK
        assert bits.mask_for_width(64) == bits.WORD_MASK

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            bits.mask_for_width(-1)


class TestExtractField:
    def test_single_bit(self):
        assert bits.extract_bit(0b1010, 1) == 1
        assert bits.extract_bit(0b1010, 2) == 0

    def test_field_is_inclusive(self):
        # bits 3..4 of 0b11000 are 0b11
        assert bits.extract_field(0b11000, 3, 4) == 0b11

    def test_field_shifts_to_zero(self):
        assert bits.extract_field(0xF0, 4, 7) == 0xF

    def test_invalid_field_rejected(self):
        with pytest.raises(ValueError):
            bits.extract_field(1, 3, 2)
        with pytest.raises(ValueError):
            bits.extract_field(1, -1, 2)


class TestInsertField:
    def test_insert_into_zero(self):
        assert bits.insert_field(0, 0b11, 2, 2) == 0b1100

    def test_insert_replaces_existing_bits(self):
        assert bits.insert_field(0b1111, 0, 1, 2) == 0b1001

    def test_value_masked_to_width(self):
        assert bits.insert_field(0, 0xFF, 0, 4) == 0xF


class TestConcatenate:
    def test_figure_3_1_layout(self):
        # mem.3.4, #01, count.1 : leftmost field most significant
        mem_field = (0b10, 2)     # two bits from mem
        bit_string = (0b01, 2)
        count_bit = (1, 1)
        value = bits.concatenate([mem_field, bit_string, count_bit])
        assert value == 0b10_01_1

    def test_single_field(self):
        assert bits.concatenate([(5, 8)]) == 5

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            bits.concatenate([(1, 20), (1, 20)])

    def test_values_masked_to_width(self):
        assert bits.concatenate([(0xFF, 4), (0, 4)]) == 0xF0


class TestHelpers:
    def test_bits_required(self):
        assert bits.bits_required(0) == 1
        assert bits.bits_required(1) == 1
        assert bits.bits_required(255) == 8
        assert bits.bits_required(256) == 9

    def test_to_bit_string(self):
        assert bits.to_bit_string(5, 4) == "0101"
        assert bits.to_bit_string(0xFF, 4) == "1111"

    def test_sign_value(self):
        assert bits.sign_value(bits.WORD_MASK) == -1
        assert bits.sign_value(5) == 5
        assert bits.sign_value(0b1000, width=4) == -8
