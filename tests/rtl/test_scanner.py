"""Unit tests for the token scanner (comments, whitespace, '.' handling)."""

import pytest

from repro.errors import MissingCommentError, SpecificationError
from repro.rtl.scanner import strip_comments, tokenize


def token_texts(source):
    stream = tokenize(source)
    texts = []
    while not stream.exhausted:
        texts.append(stream.next().text)
    return texts


class TestHeaderComment:
    def test_header_captured(self):
        stream = tokenize("# my machine\nname .\n.")
        assert stream.header_comment == "# my machine"

    def test_missing_header_rejected(self):
        with pytest.raises(MissingCommentError):
            tokenize("name .\n.")

    def test_empty_source_rejected(self):
        with pytest.raises(MissingCommentError):
            tokenize("   \n  ")

    def test_header_only(self):
        stream = tokenize("# nothing else")
        assert stream.exhausted


class TestBraceComments:
    def test_comment_removed(self):
        assert token_texts("# t\na {ignore me} b") == ["a", "b"]

    def test_comment_spanning_lines(self):
        assert token_texts("# t\na {spans\nlines} b") == ["a", "b"]

    def test_unterminated_comment_rejected(self):
        with pytest.raises(SpecificationError):
            tokenize("# t\na {never closed")

    def test_unmatched_close_rejected(self):
        with pytest.raises(SpecificationError):
            tokenize("# t\na } b")

    def test_strip_comments_preserves_line_structure(self):
        cleaned = strip_comments("a {x\ny} b\nc")
        assert cleaned.count("\n") == 2


class TestTokens:
    def test_whitespace_split(self):
        assert token_texts("# t\n A alu  4\tleft\n3048") == [
            "A", "alu", "4", "left", "3048",
        ]

    def test_trailing_period_split(self):
        assert token_texts("# t\nstate pc ir.") == ["state", "pc", "ir", "."]

    def test_lone_period_kept(self):
        assert token_texts("# t\n.") == ["."]

    def test_period_inside_token_not_split(self):
        assert token_texts("# t\nmem.3.4 x") == ["mem.3.4", "x"]

    def test_line_numbers(self):
        stream = tokenize("# t\nfirst\nsecond third")
        assert stream.next().line == 2
        assert stream.next().line == 3
        assert stream.next().line == 3


class TestTokenStream:
    def test_peek_does_not_consume(self):
        stream = tokenize("# t\na b")
        assert stream.peek().text == "a"
        assert stream.next().text == "a"

    def test_push_back(self):
        stream = tokenize("# t\na b")
        stream.next()
        stream.push_back()
        assert stream.next().text == "a"

    def test_push_back_before_start_rejected(self):
        stream = tokenize("# t\na")
        with pytest.raises(SpecificationError):
            stream.push_back()

    def test_next_past_end_rejected(self):
        stream = tokenize("# t\na")
        stream.next()
        with pytest.raises(SpecificationError):
            stream.next()

    def test_len_counts_remaining(self):
        stream = tokenize("# t\na b c")
        assert len(stream) == 3
        stream.next()
        assert len(stream) == 2
