"""Unit tests for memory operation decoding (Appendix A operation bits)."""

import pytest

from repro.rtl import memory_ops


class TestDecodeOperation:
    def test_read(self):
        decoded = memory_ops.decode_operation(0)
        assert decoded.is_read and not decoded.is_write
        assert not decoded.trace_read and not decoded.trace_write

    def test_write(self):
        decoded = memory_ops.decode_operation(1)
        assert decoded.is_write

    def test_input(self):
        assert memory_ops.decode_operation(2).is_input

    def test_output(self):
        assert memory_ops.decode_operation(3).is_output

    def test_only_low_bits_select_operation(self):
        assert memory_ops.decode_operation(4).is_read
        assert memory_ops.decode_operation(5).is_write
        assert memory_ops.decode_operation(8 | 2).is_input


class TestTraceConditions:
    """The exact conditions of the generated Pascal code (Figure 4.3)."""

    def test_trace_write_requires_write_and_bit4(self):
        # land(operation, 5) = 5
        assert memory_ops.should_trace_write(5)
        assert memory_ops.should_trace_write(4 + 1)
        assert not memory_ops.should_trace_write(4)      # trace bit, but reading
        assert not memory_ops.should_trace_write(1)      # write, no trace bit

    def test_trace_read_requires_bit8_and_not_write(self):
        # land(operation, 9) = 8
        assert memory_ops.should_trace_read(8)
        assert memory_ops.should_trace_read(8 + 2)
        assert not memory_ops.should_trace_read(8 + 1)   # writing
        assert not memory_ops.should_trace_read(0)

    def test_decode_carries_trace_flags(self):
        decoded = memory_ops.decode_operation(8 + 4 + 1)
        assert decoded.trace_write
        assert not decoded.trace_read

    def test_appendix_d_value_eleven(self):
        # The stack machine's RAM uses operation bits "the 11 sets trace
        # reads & writes" on top of a write: 8 + 2 + 1 = 11.
        assert memory_ops.should_trace_write(4 + 1)
        decoded = memory_ops.decode_operation(11)
        assert decoded.operation is memory_ops.MemoryOperation.OUTPUT


class TestNames:
    def test_operation_name(self):
        assert memory_ops.operation_name(0) == "read"
        assert memory_ops.operation_name(1) == "write"
        assert memory_ops.operation_name(2) == "input"
        assert memory_ops.operation_name(3) == "output"
        assert memory_ops.operation_name(7) == "output"

    def test_may_trace_width_heuristic(self):
        assert not memory_ops.may_trace(2)
        assert memory_ops.may_trace(3)
        assert memory_ops.may_trace(4)

    def test_enum_round_trip(self):
        for op in memory_ops.MemoryOperation:
            assert memory_ops.MemoryOperation(int(op)) is op

    def test_operation_mask(self):
        assert memory_ops.OPERATION_MASK == 0xF
        assert memory_ops.TRACE_WRITES_BIT == 4
        assert memory_ops.TRACE_READS_BIT == 8

    def test_invalid_low_bits_impossible(self):
        # any integer's low two bits decode to a valid operation
        for word in range(16):
            memory_ops.decode_operation(word)

    def test_decode_rejects_nothing(self):
        assert memory_ops.decode_operation(0xF).operation is memory_ops.MemoryOperation.OUTPUT

    def test_pytest_importable(self):
        assert memory_ops is not None


@pytest.mark.parametrize("word,expected", [(0, "read"), (5, "write"), (10, "input")])
def test_operation_name_parametrised(word, expected):
    assert memory_ops.operation_name(word) == expected
