"""Unit tests for the Specification container object."""

import pytest

from repro.errors import DuplicateComponentError, UnknownComponentError
from repro.rtl.parser import parse_spec
from repro.rtl.spec import Declaration, Specification


class TestLookups:
    def test_contains_and_len(self, counter_spec):
        assert "count" in counter_spec
        assert "missing" not in counter_spec
        assert len(counter_spec) == 4

    def test_component_lookup(self, counter_spec):
        assert counter_spec.component("next").name == "next"

    def test_unknown_component_rejected(self, counter_spec):
        with pytest.raises(UnknownComponentError):
            counter_spec.component("ghost")

    def test_kind_queries(self, counter_spec):
        assert [c.name for c in counter_spec.alus()] == ["next", "wrapped"]
        assert [c.name for c in counter_spec.memories()] == ["count", "outport"]
        assert counter_spec.selectors() == []
        assert [c.name for c in counter_spec.combinational()] == ["next", "wrapped"]

    def test_component_map(self, counter_spec):
        mapping = counter_spec.component_map
        assert set(mapping) == {"next", "wrapped", "count", "outport"}


class TestDeclarations:
    def test_traced_names_order(self):
        spec = parse_spec("# t\nb* a* .\nA a 0 0 0\nA b 0 0 0\n.")
        assert spec.traced_names == ["b", "a"]

    def test_is_traced(self, counter_spec):
        assert counter_spec.is_traced("count")
        assert not counter_spec.is_traced("next")

    def test_declaration_to_spec(self):
        assert Declaration("pc", traced=True).to_spec() == "pc*"
        assert Declaration("pc").to_spec() == "pc"


class TestWholeSpecQueries:
    def test_referenced_names(self, counter_spec):
        assert counter_spec.referenced_names() == {"count", "next", "wrapped"}

    def test_undefined_references_empty_for_valid_spec(self, counter_spec):
        assert counter_spec.undefined_references() == set()

    def test_iter_expressions_roles(self, counter_spec):
        roles = {
            (component.name, role)
            for component, role, _ in counter_spec.iter_expressions()
        }
        assert ("next", "function") in roles
        assert ("count", "address") in roles
        assert ("count", "operation") in roles

    def test_iter_expressions_selector_cases(self, figure_4_2_spec):
        roles = [
            role
            for component, role, _ in figure_4_2_spec.iter_expressions()
            if component.name == "selector"
        ]
        assert roles == ["select", "case0", "case1", "case2", "case3"]

    def test_summary_mentions_counts(self, counter_spec):
        summary = counter_spec.summary()
        assert "2 ALUs" in summary
        assert "2 memories" in summary


class TestConstruction:
    def test_duplicate_names_rejected(self, counter_spec):
        components = counter_spec.components + (counter_spec.components[0],)
        with pytest.raises(DuplicateComponentError):
            Specification(header_comment="# dup", components=components)

    def test_minimal_specification(self):
        spec = parse_spec("# tiny\nx .\nA x 0 0 0\n.")
        assert spec.cycles is None
        assert spec.macros == {}
        assert spec.declared_names == ["x"]
