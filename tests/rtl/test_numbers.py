"""Unit tests for numeric literal parsing (Appendix B 'number' syntax)."""

import pytest

from repro.errors import MalformedNumberError
from repro.rtl import numbers


class TestDecimal:
    def test_simple(self):
        assert numbers.parse_number("0") == 0
        assert numbers.parse_number("128") == 128

    def test_leading_zero(self):
        assert numbers.parse_number("007") == 7


class TestHex:
    def test_dollar_prefix(self):
        assert numbers.parse_number("$3a") == 0x3A
        assert numbers.parse_number("$FF") == 255

    def test_bad_hex_digit(self):
        with pytest.raises(MalformedNumberError):
            numbers.parse_number("$3G")

    def test_empty_hex(self):
        with pytest.raises(MalformedNumberError):
            numbers.parse_number("$")


class TestBinary:
    def test_percent_prefix(self):
        assert numbers.parse_number("%1101") == 13
        assert numbers.parse_number("%0") == 0

    def test_bad_binary_digit(self):
        with pytest.raises(MalformedNumberError):
            numbers.parse_number("%102")


class TestPowerOfTwo:
    def test_caret_prefix(self):
        assert numbers.parse_number("^0") == 1
        assert numbers.parse_number("^8") == 256
        assert numbers.parse_number("^10") == 1024

    def test_bad_power(self):
        with pytest.raises(MalformedNumberError):
            numbers.parse_number("^x")


class TestSums:
    def test_appendix_d_style_sum(self):
        # The decode ROM of Appendix D uses values like 128+3+^8.
        assert numbers.parse_number("128+3+^8") == 128 + 3 + 256

    def test_mixed_bases(self):
        assert numbers.parse_number("$10+%10+2") == 16 + 2 + 2

    def test_trailing_plus_rejected(self):
        with pytest.raises(MalformedNumberError):
            numbers.parse_number("1+")

    def test_empty_rejected(self):
        with pytest.raises(MalformedNumberError):
            numbers.parse_number("")


class TestSignedCount:
    def test_positive(self):
        assert numbers.parse_signed_count("4096") == 4096

    def test_negative_means_initialised(self):
        assert numbers.parse_signed_count("-4") == -4

    def test_negative_with_sum(self):
        assert numbers.parse_signed_count("-^7") == -128


class TestLooksLikeNumber:
    def test_accepts_numeric_alphabet(self):
        assert numbers.looks_like_number("128+^3")
        assert numbers.looks_like_number("$ff")

    def test_rejects_names(self):
        assert not numbers.looks_like_number("left")
        assert not numbers.looks_like_number("")

    def test_is_number_start(self):
        assert numbers.is_number_start("5")
        assert numbers.is_number_start("$")
        assert numbers.is_number_start("%")
        assert numbers.is_number_start("^")
        assert not numbers.is_number_start("a")


class TestFormatNumber:
    def test_decimal(self):
        assert numbers.format_number(42) == "42"

    def test_hex(self):
        assert numbers.format_number(255, "hex") == "$FF"

    def test_binary(self):
        assert numbers.format_number(5, "binary") == "%101"

    def test_power2(self):
        assert numbers.format_number(256, "power2") == "^8"

    def test_power2_rejects_non_power(self):
        with pytest.raises(MalformedNumberError):
            numbers.format_number(6, "power2")

    def test_roundtrip(self):
        for value in (0, 1, 2, 77, 1023, 2 ** 30):
            for style in ("decimal", "hex", "binary"):
                text = numbers.format_number(value, style)
                assert numbers.parse_number(text) == value

    def test_negative_rejected(self):
        with pytest.raises(MalformedNumberError):
            numbers.format_number(-1)

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            numbers.format_number(1, "roman")
