"""Property-based tests (hypothesis) for the RTL substrate invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtl import alu_ops, bits, numbers
from repro.rtl.builder import SpecBuilder
from repro.rtl.dependency import sort_combinational
from repro.rtl.expressions import parse_expression
from repro.rtl.parser import parse_spec
from repro.rtl.writer import spec_to_text

words = st.integers(min_value=0, max_value=bits.WORD_MASK)
small_values = st.integers(min_value=0, max_value=2 ** 16 - 1)


class TestBitProperties:
    @given(words, words)
    def test_land_commutative(self, a, b):
        assert bits.land(a, b) == bits.land(b, a)

    @given(words)
    def test_land_idempotent(self, a):
        assert bits.land(a, a) == a

    @given(words)
    def test_mask_word_idempotent(self, a):
        assert bits.mask_word(bits.mask_word(a)) == bits.mask_word(a)

    @given(words, st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30))
    def test_extract_field_within_mask(self, value, low, span):
        high = min(low + span, bits.WORD_BITS - 1)
        extracted = bits.extract_field(value, low, high)
        assert 0 <= extracted <= bits.mask_for_width(high - low + 1)

    @given(words, st.integers(min_value=0, max_value=30))
    def test_extract_then_insert_round_trips(self, value, low):
        high = min(low + 4, bits.WORD_BITS - 1)
        width = high - low + 1
        field = bits.extract_field(value, low, high)
        rebuilt = bits.insert_field(value, field, low, width)
        assert rebuilt == bits.mask_word(value)


class TestNumberProperties:
    @given(small_values)
    def test_decimal_round_trip(self, value):
        assert numbers.parse_number(str(value)) == value

    @given(small_values)
    def test_hex_round_trip(self, value):
        assert numbers.parse_number(numbers.format_number(value, "hex")) == value

    @given(small_values)
    def test_binary_round_trip(self, value):
        assert numbers.parse_number(numbers.format_number(value, "binary")) == value

    @given(small_values, small_values)
    def test_sum_of_terms(self, a, b):
        assert numbers.parse_number(f"{a}+{b}") == a + b


class TestAluProperties:
    @given(words, words)
    def test_results_stay_in_word(self, left, right):
        for code in range(alu_ops.FUNCTION_COUNT):
            result = alu_ops.dologic(code, left, right)
            assert 0 <= result <= bits.WORD_MASK

    @given(words, words)
    def test_add_sub_inverse(self, left, right):
        total = alu_ops.dologic(alu_ops.FN_ADD, left, right)
        back = alu_ops.dologic(alu_ops.FN_SUB, total, right)
        assert back == left

    @given(words, words)
    def test_xor_self_inverse(self, left, right):
        once = alu_ops.dologic(alu_ops.FN_XOR, left, right)
        twice = alu_ops.dologic(alu_ops.FN_XOR, once, right)
        assert twice == left

    @given(words, words)
    def test_and_or_absorption(self, left, right):
        conj = alu_ops.dologic(alu_ops.FN_AND, left, right)
        disj = alu_ops.dologic(alu_ops.FN_OR, left, conj)
        assert disj == left

    @given(words)
    def test_not_is_involution(self, value):
        negated = alu_ops.dologic(alu_ops.FN_NOT, value, 0)
        assert alu_ops.dologic(alu_ops.FN_NOT, negated, 0) == value

    @given(words, words)
    def test_comparisons_are_boolean_and_consistent(self, left, right):
        eq = alu_ops.dologic(alu_ops.FN_EQ, left, right)
        lt = alu_ops.dologic(alu_ops.FN_LT, left, right)
        gt = alu_ops.dologic(alu_ops.FN_LT, right, left)
        assert eq in (0, 1) and lt in (0, 1)
        assert eq + lt + gt == 1  # exactly one of <, =, > holds


# ---------------------------------------------------------------------------
# expression round trips
# ---------------------------------------------------------------------------

names = st.sampled_from(["a", "b", "c", "src", "reg9"])
bit_positions = st.integers(min_value=0, max_value=14)


@st.composite
def field_texts(draw, bounded=True):
    kind = draw(st.sampled_from(["const", "bits", "ref"] if not bounded
                                else ["widthconst", "bits", "bitref"]))
    if kind == "const":
        return str(draw(small_values))
    if kind == "widthconst":
        return f"{draw(small_values)}.{draw(st.integers(min_value=1, max_value=8))}"
    if kind == "bits":
        return "#" + "".join(draw(st.lists(st.sampled_from("01"), min_size=1, max_size=6)))
    if kind == "ref":
        return draw(names)
    low = draw(bit_positions)
    high = low + draw(st.integers(min_value=0, max_value=3))
    return f"{draw(names)}.{low}.{high}"


@st.composite
def expression_texts(draw):
    leftmost = draw(field_texts(bounded=False))
    rest = draw(st.lists(field_texts(bounded=True), min_size=0, max_size=3))
    return ",".join([leftmost] + rest)


class TestExpressionProperties:
    @given(expression_texts())
    @settings(max_examples=200)
    def test_parse_write_reparse_is_stable(self, text):
        expr = parse_expression(text)
        again = parse_expression(expr.to_spec())
        assert again.fields == expr.fields

    @given(expression_texts(), st.dictionaries(names, words, min_size=5, max_size=5))
    @settings(max_examples=200)
    def test_evaluation_matches_generated_python(self, text, values):
        expr = parse_expression(text)
        env = {f"v_{name}": value for name, value in values.items()}
        code = expr.to_python(lambda n: f"v_{n}")
        assert eval(code, dict(env)) == expr.evaluate(lambda n: values[n])

    @given(expression_texts())
    def test_width_never_exceeds_word(self, text):
        assert parse_expression(text).total_width <= bits.WORD_BITS


# ---------------------------------------------------------------------------
# specification round trips and dependency sorting
# ---------------------------------------------------------------------------


@st.composite
def chain_specs(draw):
    """A random straight-line spec: a register feeding a chain of ALUs."""
    length = draw(st.integers(min_value=1, max_value=6))
    builder = SpecBuilder("property chain")
    previous = "reg"
    functions = draw(
        st.lists(
            st.sampled_from([alu_ops.FN_ADD, alu_ops.FN_AND, alu_ops.FN_OR,
                             alu_ops.FN_XOR, alu_ops.FN_SUB]),
            min_size=length, max_size=length,
        )
    )
    constants = draw(
        st.lists(st.integers(min_value=0, max_value=255), min_size=length,
                 max_size=length)
    )
    for index in range(length):
        builder.alu(f"n{index}", functions[index], previous, constants[index])
        previous = f"n{index}"
    builder.register("reg", data=previous, traced=True)
    return builder.build()


class TestSpecificationProperties:
    @given(chain_specs())
    @settings(max_examples=50, deadline=None)
    def test_round_trip_preserves_components(self, spec):
        again = parse_spec(spec_to_text(spec))
        assert again.component_names() == spec.component_names()

    @given(chain_specs())
    @settings(max_examples=50, deadline=None)
    def test_dependency_sort_respects_edges(self, spec):
        order = [c.name for c in sort_combinational(spec)]
        position = {name: index for index, name in enumerate(order)}
        combinational = set(order)
        for component in spec.combinational():
            for dependency in component.referenced_names():
                if dependency in combinational:
                    assert position[dependency] < position[component.name]
