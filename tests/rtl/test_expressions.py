"""Unit tests for expression parsing and evaluation (Figure 3.1 semantics)."""

import pytest

from repro.errors import ExpressionWidthError, MalformedExpressionError
from repro.rtl.bits import WORD_MASK
from repro.rtl.expressions import (
    BitStringField,
    ComponentRef,
    ConstantField,
    Expression,
    constant_expression,
    parse_expression,
    parse_field,
    reference_expression,
)


def lookup(values):
    return lambda name: values[name]


class TestFieldParsing:
    def test_decimal_constant(self):
        field = parse_field("3048")
        assert isinstance(field, ConstantField)
        assert field.value == 3048
        assert field.width is None

    def test_constant_with_width(self):
        field = parse_field("5.3")
        assert isinstance(field, ConstantField)
        assert field.value == 5
        assert field.width == 3

    def test_hex_constant(self):
        assert parse_field("$ff").value == 255

    def test_bit_string(self):
        field = parse_field("#0101")
        assert isinstance(field, BitStringField)
        assert field.value == 5
        assert field.width == 4

    def test_bad_bit_string(self):
        with pytest.raises(MalformedExpressionError):
            parse_field("#012")

    def test_whole_component(self):
        field = parse_field("mem")
        assert isinstance(field, ComponentRef)
        assert field.name == "mem"
        assert field.width is None

    def test_single_bit_reference(self):
        field = parse_field("count.1")
        assert field.low == 1 and field.high is None
        assert field.width == 1

    def test_bit_range_reference(self):
        field = parse_field("mem.3.4")
        assert field.low == 3 and field.high == 4
        assert field.width == 2

    def test_reversed_bit_range_rejected(self):
        with pytest.raises(MalformedExpressionError):
            parse_field("mem.4.3")

    def test_too_many_bit_positions(self):
        with pytest.raises(MalformedExpressionError):
            parse_field("mem.1.2.3")

    def test_garbage_field(self):
        with pytest.raises(MalformedExpressionError):
            parse_field("*foo")

    def test_empty_field(self):
        with pytest.raises(MalformedExpressionError):
            parse_field("")


class TestFigure31Concatenation:
    """The worked example of Figure 3.1: mem.3.4, #01, count.1."""

    def test_layout(self):
        expr = parse_expression("mem.3.4,#01,count.1")
        # mem = ...11000 (bits 3..4 are 11), count bit 1 set
        values = {"mem": 0b11000, "count": 0b10}
        # result: [mem.4 mem.3 | 0 1 | count.1] = 0b11_01_1
        assert expr.evaluate(lookup(values)) == 0b11011

    def test_total_width(self):
        expr = parse_expression("mem.3.4,#01,count.1")
        assert expr.total_width == 5

    def test_rightmost_field_is_least_significant(self):
        expr = parse_expression("a.0,b.0")
        assert expr.evaluate(lookup({"a": 1, "b": 0})) == 0b10
        assert expr.evaluate(lookup({"a": 0, "b": 1})) == 0b01


class TestEvaluation:
    def test_constant(self):
        assert parse_expression("42").evaluate(lookup({})) == 42

    def test_constant_sum(self):
        assert parse_expression("128+3+^8").evaluate(lookup({})) == 387

    def test_constant_with_width_masks(self):
        assert parse_expression("255.4").evaluate(lookup({})) == 15

    def test_whole_component(self):
        assert parse_expression("x").evaluate(lookup({"x": 99})) == 99

    def test_whole_component_masked_to_word(self):
        assert parse_expression("x").evaluate(lookup({"x": 2 ** 32 + 7})) == 7

    def test_bit_extraction(self):
        assert parse_expression("x.4.7").evaluate(lookup({"x": 0xA5})) == 0xA

    def test_unbounded_constant_leftmost_allowed(self):
        # Appendix D uses forms like "1,rom.9,prog.0.3".
        expr = parse_expression("1,flag.0")
        assert expr.evaluate(lookup({"flag": 0})) == 0b10
        assert expr.evaluate(lookup({"flag": 1})) == 0b11

    def test_evaluate_in_mapping(self):
        expr = parse_expression("a,b.0")
        assert expr.evaluate_in({"a": 1, "b": 1}) == 3


class TestWidthChecking:
    def test_unbounded_field_not_leftmost_rejected(self):
        with pytest.raises(ExpressionWidthError):
            parse_expression("a.0,b")

    def test_too_many_bits_rejected(self):
        with pytest.raises(ExpressionWidthError):
            parse_expression("a.0.20,b.0.20")

    def test_exactly_31_bits_allowed(self):
        expr = parse_expression("a.0.15,b.0.14")
        assert expr.total_width == 31


class TestConstantFolding:
    def test_is_constant(self):
        assert parse_expression("5,#01").is_constant
        assert not parse_expression("a,#01").is_constant

    def test_constant_value(self):
        assert parse_expression("5.3,#01").constant_value() == 0b101_01

    def test_constant_value_raises_for_non_constant(self):
        with pytest.raises(MalformedExpressionError):
            parse_expression("a").constant_value()


class TestReferencedNames:
    def test_collects_all_names(self):
        expr = parse_expression("b,a.1,#11")
        assert expr.referenced_names() == {"a", "b"}

    def test_constants_reference_nothing(self):
        assert parse_expression("#01,7.2").referenced_names() == set()


class TestCodeGeneration:
    def test_constant_folds_to_literal(self):
        assert parse_expression("128+3").to_python(lambda n: n) == "131"

    def test_whole_reference(self):
        assert parse_expression("x").to_python(lambda n: f"v_{n}") == "v_x"

    def test_bit_field_reference(self):
        code = parse_expression("x.4.7").to_python(lambda n: f"v_{n}")
        assert eval(code, {"v_x": 0xA5}) == 0xA

    def test_concatenation_matches_evaluation(self):
        expr = parse_expression("x.3.4,#01,y.1")
        values = {"x": 0b11000, "y": 0b10}
        code = expr.to_python(lambda n: f"v_{n}")
        generated = eval(code, {f"v_{k}": v for k, v in values.items()})
        assert generated == expr.evaluate(lookup(values))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        ["42", "x", "x.3", "x.3.4", "#0101", "x.3.4,#01,y.1", "5.3", "1,flag.0"],
    )
    def test_to_spec_reparses_equal(self, source):
        expr = parse_expression(source)
        again = parse_expression(expr.to_spec())
        assert again.fields == expr.fields


class TestConstructors:
    def test_constant_expression(self):
        assert constant_expression(7).constant_value() == 7
        assert constant_expression(255, width=4).constant_value() == 15

    def test_reference_expression(self):
        expr = reference_expression("pc", 0, 6)
        assert expr.referenced_names() == {"pc"}
        assert expr.evaluate(lookup({"pc": 0x1FF})) == 0x7F

    def test_empty_expression_rejected(self):
        with pytest.raises(MalformedExpressionError):
            Expression(())

    def test_word_mask_constant(self):
        assert constant_expression(WORD_MASK).constant_value() == WORD_MASK
