"""Unit tests for macro definition and expansion (Appendix A macro rules)."""

import pytest

from repro.errors import (
    InvalidNameError,
    MacroRedefinitionError,
    UndefinedMacroError,
)
from repro.rtl.macros import MacroTable, is_macro_definition_token, validate_macro_name


class TestDefinition:
    def test_define_and_lookup(self):
        table = MacroTable()
        table.define("k", "10")
        assert "k" in table
        assert table.body("k") == "10"
        assert len(table) == 1

    def test_redefinition_rejected(self):
        table = MacroTable()
        table.define("k", "10")
        with pytest.raises(MacroRedefinitionError):
            table.define("k", "11")

    def test_invalid_name_rejected(self):
        table = MacroTable()
        with pytest.raises(InvalidNameError):
            table.define("2bad", "x")
        with pytest.raises(InvalidNameError):
            table.define("has-dash", "x")

    def test_names_preserve_definition_order(self):
        table = MacroTable()
        table.define("b", "1")
        table.define("a", "2")
        assert table.names() == ["b", "a"]

    def test_body_of_undefined_macro(self):
        with pytest.raises(UndefinedMacroError):
            MacroTable().body("missing")


class TestExpansion:
    def test_simple_substitution(self):
        table = MacroTable()
        table.define("w", "8")
        assert table.expand("rom.~w") == "rom.8"

    def test_macro_inside_longer_token(self):
        table = MacroTable()
        table.define("d", "5")
        table.define("dd", "7")
        # The longest run of name characters after ~ is the macro name.
        assert table.expand("parm.~d") == "parm.5"
        assert table.expand("parm.~dd") == "parm.7"

    def test_multiple_references(self):
        table = MacroTable()
        table.define("a", "1")
        table.define("b", "2")
        assert table.expand("~a,~b,~a") == "1,2,1"

    def test_text_without_macros_unchanged(self):
        assert MacroTable().expand("state.0.5") == "state.0.5"

    def test_undefined_reference_rejected(self):
        table = MacroTable()
        with pytest.raises(UndefinedMacroError):
            table.expand("~nope")

    def test_bare_sigil_rejected(self):
        table = MacroTable()
        table.define("a", "1")
        with pytest.raises(UndefinedMacroError):
            table.expand("x~,y")

    def test_nested_definition_expands_at_definition_time(self):
        # "A macro may contain a macro name, as long as that name has
        # already been defined."
        table = MacroTable()
        table.define("base", "10")
        table.define("derived", "~base+1")
        assert table.body("derived") == "10+1"
        assert table.expand("~derived") == "10+1"

    def test_as_dict_snapshot(self):
        table = MacroTable()
        table.define("k", "10")
        snapshot = table.as_dict()
        snapshot["k"] = "changed"
        assert table.body("k") == "10"


class TestDefinitionTokens:
    def test_tilde_definition_recognised(self):
        assert is_macro_definition_token("~pack")

    def test_dash_tolerated(self):
        assert is_macro_definition_token("-pack")

    def test_plain_name_not_a_definition(self):
        assert not is_macro_definition_token("pack")
        assert not is_macro_definition_token("~")
        assert not is_macro_definition_token("~1abc")

    def test_validate_macro_name(self):
        validate_macro_name("ok123")
        with pytest.raises(InvalidNameError):
            validate_macro_name("")
