"""Unit tests for the programmatic SpecBuilder."""

import pytest

from repro.errors import SpecificationError, ValidationError
from repro.rtl.builder import SpecBuilder, as_expression
from repro.rtl.expressions import Expression
from repro.rtl.parser import parse_spec


class TestAsExpression:
    def test_int_becomes_constant(self):
        assert as_expression(7).constant_value() == 7

    def test_bool_becomes_constant(self):
        assert as_expression(True).constant_value() == 1

    def test_string_is_parsed(self):
        expr = as_expression("ir.0.6")
        assert expr.referenced_names() == {"ir"}

    def test_expression_passes_through(self):
        expr = as_expression("x")
        assert as_expression(expr) is expr

    def test_negative_int_rejected(self):
        with pytest.raises(SpecificationError):
            as_expression(-1)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            as_expression(3.14)


class TestBuilder:
    def build_counter(self):
        builder = SpecBuilder("counter")
        builder.alu("next", 4, "count", 1)
        builder.alu("wrapped", 8, "next", 7)
        builder.register("count", data="wrapped", traced=True)
        return builder

    def test_build_produces_valid_spec(self):
        spec = self.build_counter().build()
        assert len(spec) == 3
        assert spec.traced_names == ["count"]

    def test_header_gets_hash_prefix(self):
        assert self.build_counter().build().header_comment.startswith("#")

    def test_to_text_parses_back(self):
        text = self.build_counter().to_text()
        spec = parse_spec(text)
        assert set(spec.component_names()) == {"next", "wrapped", "count"}

    def test_duplicate_names_rejected(self):
        builder = self.build_counter()
        with pytest.raises(SpecificationError):
            builder.alu("next", 0, 0, 0)

    def test_validation_failure_propagates(self):
        builder = SpecBuilder("bad")
        builder.alu("x", 4, "ghost", 1)
        with pytest.raises(ValidationError):
            builder.build()
        # but validation can be skipped
        assert builder.build(validate=False).component("x")

    def test_cycles(self):
        spec = self.build_counter().cycles(99).build()
        assert spec.cycles == 99

    def test_negative_cycles_rejected(self):
        with pytest.raises(SpecificationError):
            SpecBuilder("x").cycles(-1)


class TestMemoryHelpers:
    def test_register_defaults(self):
        builder = SpecBuilder("regs")
        builder.register("r", data=5)
        spec = builder.build()
        register = spec.component("r")
        assert register.size == 1
        assert register.operation.constant_value() == 1

    def test_register_initial_value(self):
        builder = SpecBuilder("regs")
        builder.register("r", data="r", initial_value=42)
        register = builder.build().component("r")
        assert register.initial_values == (42,)
        assert register.initial_output == 42

    def test_rom_pads_contents(self):
        builder = SpecBuilder("rom")
        builder.register("addr", data=0)
        builder.rom("prog", address="addr", contents=[1, 2, 3], size=8)
        rom = builder.build().component("prog")
        assert rom.size == 8
        assert rom.initial_values == (1, 2, 3, 0, 0, 0, 0, 0)
        assert rom.operation.constant_value() == 0

    def test_memory_too_many_initial_values_rejected(self):
        builder = SpecBuilder("bad")
        with pytest.raises(SpecificationError):
            builder.memory("m", 0, 0, 0, size=2, initial_values=[1, 2, 3])

    def test_selector_builder(self):
        builder = SpecBuilder("sel")
        builder.register("idx", data=0)
        builder.selector("pick", "idx", [10, 20, "idx"])
        selector = builder.build().component("pick")
        assert selector.case_count == 3


class TestTrace:
    def test_trace_marks_components(self):
        builder = SpecBuilder("t")
        builder.alu("a", 0, 0, 0)
        builder.alu("b", 0, 0, 0)
        builder.trace("b")
        assert builder.build().traced_names == ["b"]

    def test_trace_unknown_component_rejected(self):
        builder = SpecBuilder("t")
        with pytest.raises(SpecificationError):
            builder.trace("ghost")

    def test_expression_objects_accepted(self):
        builder = SpecBuilder("t")
        builder.alu("a", as_expression(4), as_expression(1), as_expression(2))
        assert isinstance(builder.build().component("a").left, Expression)
