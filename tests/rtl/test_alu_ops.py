"""Unit tests for the fourteen ALU functions (Appendix A list)."""

import pytest

from repro.errors import InvalidAluFunctionError
from repro.rtl import alu_ops
from repro.rtl.bits import WORD_MASK


class TestDologic:
    def test_zero(self):
        assert alu_ops.dologic(0, 123, 456) == 0

    def test_right(self):
        assert alu_ops.dologic(1, 123, 456) == 456

    def test_left(self):
        assert alu_ops.dologic(2, 123, 456) == 123

    def test_not_left(self):
        assert alu_ops.dologic(3, 0, 0) == WORD_MASK
        assert alu_ops.dologic(3, WORD_MASK, 0) == 0
        assert alu_ops.dologic(3, 0b1010, 0) == WORD_MASK - 0b1010

    def test_add(self):
        assert alu_ops.dologic(4, 2, 3) == 5

    def test_add_wraps(self):
        assert alu_ops.dologic(4, WORD_MASK, 1) == 0

    def test_subtract(self):
        assert alu_ops.dologic(5, 10, 3) == 7

    def test_subtract_wraps_negative(self):
        assert alu_ops.dologic(5, 0, 1) == WORD_MASK

    def test_shift_left(self):
        assert alu_ops.dologic(6, 1, 4) == 16
        assert alu_ops.dologic(6, 3, 2) == 12

    def test_shift_left_by_zero(self):
        assert alu_ops.dologic(6, 7, 0) == 7

    def test_shift_left_overflow_drops_bits(self):
        assert alu_ops.dologic(6, 1, 31) == 0
        assert alu_ops.dologic(6, 1, 100) == 0

    def test_multiply(self):
        assert alu_ops.dologic(7, 6, 7) == 42

    def test_multiply_wraps(self):
        assert alu_ops.dologic(7, 2 ** 20, 2 ** 20) == (2 ** 40) & WORD_MASK

    def test_and(self):
        assert alu_ops.dologic(8, 0b1100, 0b1010) == 0b1000

    def test_or(self):
        assert alu_ops.dologic(9, 0b1100, 0b1010) == 0b1110

    def test_xor(self):
        assert alu_ops.dologic(10, 0b1100, 0b1010) == 0b0110

    def test_unused_is_zero(self):
        assert alu_ops.dologic(11, 99, 98) == 0

    def test_equal(self):
        assert alu_ops.dologic(12, 5, 5) == 1
        assert alu_ops.dologic(12, 5, 6) == 0

    def test_less_than(self):
        assert alu_ops.dologic(13, 5, 6) == 1
        assert alu_ops.dologic(13, 6, 5) == 0
        assert alu_ops.dologic(13, 6, 6) == 0

    def test_operands_masked(self):
        assert alu_ops.dologic(2, 2 ** 31 + 3, 0) == 3

    def test_unknown_function_rejected(self):
        with pytest.raises(InvalidAluFunctionError):
            alu_ops.dologic(14, 1, 2)
        with pytest.raises(InvalidAluFunctionError):
            alu_ops.dologic(-1, 1, 2)


class TestFunctionTable:
    def test_every_code_has_info(self):
        for code in range(alu_ops.FUNCTION_COUNT):
            info = alu_ops.function_info(code)
            assert info.code == code
            assert info.name == alu_ops.FUNCTION_NAMES[code]

    def test_function_count_is_fourteen(self):
        assert alu_ops.FUNCTION_COUNT == 14

    def test_is_valid_function(self):
        assert alu_ops.is_valid_function(0)
        assert alu_ops.is_valid_function(13)
        assert not alu_ops.is_valid_function(14)
        assert not alu_ops.is_valid_function(-1)

    def test_invalid_code_info_rejected(self):
        with pytest.raises(InvalidAluFunctionError):
            alu_ops.function_info(99)

    @pytest.mark.parametrize("code", range(alu_ops.FUNCTION_COUNT))
    def test_python_templates_match_dologic(self, code):
        """The inline templates used by the compiler agree with dologic."""
        info = alu_ops.function_info(code)
        namespace = {"_shift_left": alu_ops.shift_left}
        for left, right in [(0, 0), (5, 3), (3, 5), (WORD_MASK, 1), (1, WORD_MASK)]:
            expression = info.python_template.format(l=left, r=right)
            assert eval(expression, namespace) == alu_ops.dologic(code, left, right)


class TestShiftLeft:
    def test_matches_multiplication_by_power_of_two(self):
        for left in (0, 1, 5, 1000):
            for right in range(0, 12):
                assert alu_ops.shift_left(left, right) == (left * 2 ** right) & WORD_MASK
