"""Unit tests for the component model (the three primitives)."""

import pytest

from repro.errors import SpecificationError
from repro.rtl.components import (
    COMPONENT_LETTERS,
    Alu,
    ComponentKind,
    Memory,
    Selector,
)
from repro.rtl.expressions import constant_expression, parse_expression


def const(value):
    return constant_expression(value)


class TestAlu:
    def test_kind_and_combinational(self):
        alu = Alu("add", const(4), parse_expression("a"), const(1))
        assert alu.kind is ComponentKind.ALU
        assert alu.is_combinational

    def test_constant_function_detection(self):
        assert Alu("a", const(4), const(0), const(0)).has_constant_function
        assert not Alu(
            "a", parse_expression("f"), const(0), const(0)
        ).has_constant_function

    def test_referenced_names(self):
        alu = Alu("x", parse_expression("f"), parse_expression("l.0.3"), const(9))
        assert alu.referenced_names() == {"f", "l"}

    def test_missing_expression_rejected(self):
        with pytest.raises(SpecificationError):
            Alu("bad", None, const(0), const(0))


class TestSelector:
    def test_kind_and_case_count(self):
        sel = Selector("s", parse_expression("i"), (const(1), const(2)))
        assert sel.kind is ComponentKind.SELECTOR
        assert sel.case_count == 2
        assert sel.is_combinational

    def test_referenced_names_include_cases(self):
        sel = Selector(
            "s", parse_expression("i"), (parse_expression("a"), parse_expression("b"))
        )
        assert sel.referenced_names() == {"i", "a", "b"}

    def test_empty_case_list_rejected(self):
        with pytest.raises(SpecificationError):
            Selector("s", parse_expression("i"), ())

    def test_missing_select_rejected(self):
        with pytest.raises(SpecificationError):
            Selector("s", None, (const(1),))


class TestMemory:
    def make(self, size=4, initial=()):
        return Memory(
            "m", const(0), parse_expression("d"), const(1), size, tuple(initial)
        )

    def test_kind_and_statefulness(self):
        memory = self.make()
        assert memory.kind is ComponentKind.MEMORY
        assert not memory.is_combinational

    def test_register_detection(self):
        assert self.make(size=1).is_register
        assert not self.make(size=2).is_register

    def test_initial_cell_values_default_zero(self):
        assert self.make(size=3).initial_cell_values() == [0, 0, 0]

    def test_initial_cell_values_from_list(self):
        memory = self.make(size=2, initial=(7, 9))
        assert memory.initial_cell_values() == [7, 9]
        assert memory.has_initial_values

    def test_initial_output_for_register(self):
        register = self.make(size=1, initial=(42,))
        assert register.initial_output == 42

    def test_initial_output_for_ram_is_zero(self):
        assert self.make(size=2, initial=(7, 9)).initial_output == 0

    def test_initial_output_without_values_is_zero(self):
        assert self.make(size=1).initial_output == 0

    def test_wrong_initial_value_count_rejected(self):
        with pytest.raises(SpecificationError):
            self.make(size=3, initial=(1, 2))

    def test_negative_initial_value_rejected(self):
        with pytest.raises(SpecificationError):
            self.make(size=1, initial=(-1,))

    def test_zero_size_rejected(self):
        with pytest.raises(SpecificationError):
            self.make(size=0)

    def test_constant_operation_detection(self):
        assert self.make().has_constant_operation
        dyn = Memory("m", const(0), const(0), parse_expression("op"), 1, ())
        assert not dyn.has_constant_operation

    def test_referenced_names(self):
        memory = Memory(
            "m",
            parse_expression("addr.0.3"),
            parse_expression("d"),
            parse_expression("op"),
            16,
            (),
        )
        assert memory.referenced_names() == {"addr", "d", "op"}


class TestComponentLetters:
    def test_letter_mapping(self):
        assert COMPONENT_LETTERS["A"] is Alu
        assert COMPONENT_LETTERS["S"] is Selector
        assert COMPONENT_LETTERS["M"] is Memory

    def test_kind_values_match_letters(self):
        assert ComponentKind.ALU.value == "A"
        assert ComponentKind.SELECTOR.value == "S"
        assert ComponentKind.MEMORY.value == "M"
