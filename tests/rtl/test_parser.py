"""Unit tests for the specification parser (Appendix A file format)."""

import pytest

from repro.errors import (
    InvalidNameError,
    MalformedNumberError,
    MissingCommentError,
    SpecificationError,
    UndefinedMacroError,
    ValidationError,
)
from repro.rtl.components import Alu, Memory, Selector
from repro.rtl.parser import check_component_name, parse_spec, parse_spec_file


class TestBasicStructure:
    def test_counter_spec(self, counter_spec):
        assert len(counter_spec) == 4
        assert counter_spec.declared_names == ["count", "next", "wrapped", "outport"]
        assert counter_spec.traced_names == ["count"]

    def test_component_kinds(self, counter_spec):
        assert isinstance(counter_spec.component("next"), Alu)
        assert isinstance(counter_spec.component("count"), Memory)

    def test_header_comment_preserved(self, counter_spec):
        assert counter_spec.header_comment.startswith("#")

    def test_missing_comment_rejected(self):
        with pytest.raises(MissingCommentError):
            parse_spec("a .\n.")


class TestCycleCount:
    def test_cycles_parsed(self):
        spec = parse_spec("# t\n= 5545\nx .\nA x 0 0 0\n.")
        assert spec.cycles == 5545

    def test_cycles_attached_to_equals(self):
        spec = parse_spec("# t\n=100\nx .\nA x 0 0 0\n.")
        assert spec.cycles == 100

    def test_cycles_optional(self):
        spec = parse_spec("# t\nx .\nA x 0 0 0\n.")
        assert spec.cycles is None

    def test_bad_cycle_count_rejected(self):
        with pytest.raises(MalformedNumberError):
            parse_spec("# t\n= lots\nx .\nA x 0 0 0\n.")


class TestMacros:
    def test_macro_substitution(self):
        spec = parse_spec(
            "# t\n~w 8\nx .\nA x 2 rom.~w 0\nM rom 0 0 0 1\n.",
            validate=False,
        )
        alu = spec.component("x")
        assert alu.left.to_spec() == "rom.8"

    def test_macro_recorded(self):
        spec = parse_spec("# t\n~w 8\nx .\nA x 0 0 ~w\n.")
        assert spec.macros == {"w": "8"}

    def test_macro_referencing_macro(self):
        spec = parse_spec("# t\n~a 4\n~b ~a+1\nx .\nA x 0 0 ~b\n.")
        assert spec.component("x").right.constant_value() == 5

    def test_undefined_macro_rejected(self):
        with pytest.raises(UndefinedMacroError):
            parse_spec("# t\nx .\nA x 0 0 ~nope\n.")

    def test_dash_definition_tolerated(self):
        spec = parse_spec("# t\n-w 9\nx .\nA x 0 0 ~w\n.")
        assert spec.component("x").right.constant_value() == 9


class TestComponents:
    def test_alu_fields(self, figure_4_1_spec):
        alu = figure_4_1_spec.component("alu")
        assert alu.funct.to_spec() == "compute"
        assert alu.left.to_spec() == "left"
        assert alu.right.constant_value() == 3048

    def test_selector_cases(self, figure_4_2_spec):
        selector = figure_4_2_spec.component("selector")
        assert isinstance(selector, Selector)
        assert selector.case_count == 4

    def test_selector_terminated_by_next_component(self):
        spec = parse_spec(
            "# t\ns x .\nS s x 1 2 3\nM x 0 0 0 1\n.", validate=False
        )
        assert spec.component("s").case_count == 3

    def test_memory_with_initial_values(self, figure_4_3_spec):
        memory = figure_4_3_spec.component("memory")
        assert memory.size == 4
        assert memory.initial_values == (12, 34, 56, 78)

    def test_memory_without_initial_values(self, counter_spec):
        memory = counter_spec.component("count")
        assert memory.size == 1
        assert memory.initial_values == ()

    def test_memory_zero_cells_rejected(self):
        with pytest.raises(SpecificationError):
            parse_spec("# t\nm .\nM m 0 0 0 0\n.")

    def test_unknown_component_letter_rejected(self):
        with pytest.raises(SpecificationError) as excinfo:
            parse_spec("# t\nx .\nQ x 0 0 0\n.")
        assert "Q" in str(excinfo.value)

    def test_truncated_component_rejected(self):
        with pytest.raises(SpecificationError):
            parse_spec("# t\nx .\nA x 4 1")

    def test_error_mentions_last_component(self):
        with pytest.raises(SpecificationError) as excinfo:
            parse_spec("# t\nx .\nA x 4 1 1\nA y 4 bad..bits 1\n.")
        assert "x" in str(excinfo.value) or "y" in str(excinfo.value)


class TestNames:
    def test_invalid_component_name_rejected(self):
        with pytest.raises(InvalidNameError):
            parse_spec("# t\nx .\nA 9lives 0 0 0\n.")

    def test_check_component_name_helper(self):
        assert check_component_name("alu2") == "alu2"
        with pytest.raises(InvalidNameError):
            check_component_name("has space")


class TestValidationIntegration:
    def test_unknown_reference_rejected_by_default(self):
        with pytest.raises(ValidationError) as excinfo:
            parse_spec("# t\nx .\nA x 4 ghost 1\n.")
        assert "ghost" in str(excinfo.value)

    def test_validation_can_be_disabled(self):
        spec = parse_spec("# t\nx .\nA x 4 ghost 1\n.", validate=False)
        assert "ghost" in spec.undefined_references()

    def test_circular_dependency_rejected(self):
        source = "# t\na b .\nA a 4 b 1\nA b 4 a 1\n.\n"
        with pytest.raises(ValidationError) as excinfo:
            parse_spec(source)
        assert "circular" in str(excinfo.value).lower()

    def test_strict_mode_promotes_warnings(self):
        # declared but never defined -> warning normally, error when strict
        source = "# t\nx ghost .\nA x 0 0 0\n.\n"
        parse_spec(source)
        with pytest.raises(ValidationError):
            parse_spec(source, strict=True)


class TestFileParsing:
    def test_parse_spec_file(self, tmp_path, counter_spec_text):
        path = tmp_path / "counter.asim"
        path.write_text(counter_spec_text)
        spec = parse_spec_file(path)
        assert spec.source_name == "counter.asim"
        assert len(spec) == 4

    def test_duplicate_component_rejected(self):
        with pytest.raises(SpecificationError):
            parse_spec("# t\nx .\nA x 0 0 0\nA x 1 0 0\n.")
