"""Unit tests for specification validation (hard errors and checkdcl warnings)."""

import pytest

from repro.errors import ValidationError
from repro.rtl.parser import parse_spec
from repro.rtl.validate import ensure_valid, validate


def parse_raw(source):
    return parse_spec(source, validate=False)


class TestReferenceChecks:
    def test_valid_spec_passes(self, counter_spec):
        report = validate(counter_spec)
        assert report.ok
        assert report.warnings == []

    def test_unknown_reference_is_error(self):
        spec = parse_raw("# t\nx .\nA x 4 ghost 1\n.")
        report = validate(spec)
        assert not report.ok
        assert any("ghost" in error for error in report.errors)

    def test_error_names_consumer_and_role(self):
        spec = parse_raw("# t\nx .\nA x 4 ghost 1\n.")
        report = validate(spec)
        assert any("x left" in error for error in report.errors)


class TestBitFieldChecks:
    def test_bit_past_word_is_error(self):
        spec = parse_raw("# t\nx r .\nA x 2 r.40 0\nM r 0 0 0 1\n.")
        report = validate(spec)
        assert any("exceeds" in error for error in report.errors)

    def test_bit_30_allowed(self):
        spec = parse_raw("# t\nx r .\nA x 2 r.30 0\nM r 0 0 0 1\n.")
        assert validate(spec).ok


class TestMemoryAddressChecks:
    def test_constant_address_out_of_range(self):
        spec = parse_raw("# t\nm .\nM m 5 0 0 4\n.")
        report = validate(spec)
        assert any("outside its declared range" in error for error in report.errors)

    def test_constant_address_in_range(self):
        spec = parse_raw("# t\nm .\nM m 3 0 0 4\n.")
        assert validate(spec).ok


class TestSelectorChecks:
    def test_constant_index_out_of_range_is_error(self):
        spec = parse_raw("# t\ns .\nS s 5 1 2 3\n.")
        report = validate(spec)
        assert not report.ok

    def test_narrow_index_with_missing_cases_warns(self):
        spec = parse_raw("# t\ns r .\nS s r.0.2 1 2 3\nM r 0 0 0 1\n.")
        report = validate(spec)
        assert report.ok
        assert any("only 3 cases" in warning for warning in report.warnings)

    def test_fully_covered_selector_no_warning(self):
        spec = parse_raw("# t\ns r .\nS s r.0.1 1 2 3 4\nM r 0 0 0 1\n.")
        report = validate(spec)
        assert report.warnings == []


class TestDeclarationChecks:
    def test_declared_but_not_defined_warns(self):
        spec = parse_raw("# t\nx ghost .\nA x 0 0 0\n.")
        report = validate(spec)
        assert any("declared but not defined" in w for w in report.warnings)

    def test_defined_but_not_declared_warns(self):
        spec = parse_raw("# t\nx .\nA x 0 0 0\nA extra 0 0 0\n.")
        report = validate(spec)
        assert any("defined but not declared" in w for w in report.warnings)

    def test_empty_declaration_list_not_checked(self):
        spec = parse_raw("# t\n.\nA x 0 0 0\n.")
        assert validate(spec).warnings == []


class TestStrictAndEnsure:
    def test_strict_promotes_warnings(self):
        spec = parse_raw("# t\nx ghost .\nA x 0 0 0\n.")
        assert validate(spec).ok
        assert not validate(spec, strict=True).ok

    def test_ensure_valid_raises(self):
        spec = parse_raw("# t\nx .\nA x 4 ghost 1\n.")
        with pytest.raises(ValidationError):
            ensure_valid(spec)

    def test_ensure_valid_returns_report(self, counter_spec):
        report = ensure_valid(counter_spec)
        assert report.ok

    def test_circular_dependency_reported(self):
        spec = parse_raw("# t\na b .\nA a 4 b 1\nA b 4 a 1\n.")
        report = validate(spec)
        assert any("circular" in error.lower() for error in report.errors)

    def test_validation_error_collects_problems(self):
        spec = parse_raw("# t\nx .\nA x 4 ghost spook\n.")
        with pytest.raises(ValidationError) as excinfo:
            ensure_valid(spec)
        assert len(excinfo.value.problems) >= 2
