"""Unit tests for the shared lowering pipeline (CycleProgram IR)."""

import pickle

import pytest

from repro.compiler.cache import PrepareCache
from repro.core.iosystem import QueueIO
from repro.interp.closures import RunContext, ThreadedProgram
from repro.interp.interpreter import InterpreterBackend
from repro.lowering import lower, lower_cached
from repro.lowering.program import AluStep, MemoryStep, SelectorStep
from repro.rtl.parser import parse_spec

CONSTANT_HEAVY = """\
# constants everywhere
base scaled twin result r .
A base 4 10 20
A scaled 7 base 2
A twin 4 r 1
A result 4 r 1
M r 0 result 1 1
.
"""


class TestLowerPlain:
    def test_slots_cover_every_component(self, counter_spec):
        program = lower(counter_spec)
        assert set(program.slots) == {"next", "wrapped", "count", "outport"}
        assert program.value_count == 4 + 3 * 2  # components + latch scratch

    def test_fast_is_full_without_specopt(self, counter_spec):
        program = lower(counter_spec)
        assert program.fast is program.full
        assert not program.changed
        assert program.optimization is None

    def test_steps_mirror_schedule(self, counter_spec):
        program = lower(counter_spec)
        assert len(program.fast.steps) == len(program.fast.ordered)
        assert all(
            isinstance(step, (AluStep, SelectorStep))
            for step in program.fast.steps
        )
        assert all(
            isinstance(step, MemoryStep)
            for step in program.fast.memory_steps
        )
        assert program.fast.evaluations_per_cycle == 4

    def test_observables_all_live(self, counter_spec):
        program = lower(counter_spec)
        assert all(
            resolution == ("live", name)
            for name, resolution in program.observables.items()
        )


class TestLowerWithSpecopt:
    def test_full_variant_keeps_original_schedule(self):
        spec = parse_spec(CONSTANT_HEAVY)
        program = lower(spec, specopt=True)
        assert program.changed
        assert len(program.fast.ordered) < len(program.full.ordered)
        assert len(program.full.ordered) == 4
        # both variants share one slot layout over the original names
        assert set(program.slots) >= {"base", "scaled", "twin", "result", "r"}

    def test_observables_map_back_to_pre_specopt_names(self):
        spec = parse_spec(CONSTANT_HEAVY)
        program = lower(spec, specopt=True)
        assert program.observables["base"] == ("const", 30)
        assert program.observables["scaled"] == ("const", 60)
        # 'result' duplicates 'twin'; whichever survived, the other aliases it
        kinds = {
            name: program.observables[name][0]
            for name in ("twin", "result")
        }
        assert sorted(kinds.values()) == ["alias", "live"]

    def test_restore_final_values(self):
        spec = parse_spec(CONSTANT_HEAVY)
        program = lower(spec, specopt=True)
        final = {"twin": 9, "r": 8}
        program.restore_final_values(final, cycles_run=3)
        assert final["base"] == 30
        assert final["scaled"] == 60
        assert final["result"] == 9
        program.restore_final_values(final, cycles_run=0)
        assert final["base"] == 0

    def test_artifact_memo_returns_hit_flag(self, counter_spec):
        program = lower(counter_spec)
        first, hit1 = program.artifact(("k",), lambda: object())
        second, hit2 = program.artifact(("k",), lambda: object())
        assert first is second
        assert (hit1, hit2) == (False, True)


class TestPicklability:
    """The ISSUE's headline property: one picklable lowered program."""

    def test_round_trip_runs_identically(self):
        spec = parse_spec(CONSTANT_HEAVY)
        program = lower(spec, specopt=True)
        program.artifact(("threaded", False),
                         lambda: ThreadedProgram(program, False))
        clone = pickle.loads(pickle.dumps(program))
        # the artifact memo (closures, unpicklable) is dropped, the IR kept
        assert clone.slots == program.slots
        assert clone.observables == program.observables
        _, hit = clone.artifact(("threaded", False),
                                lambda: ThreadedProgram(clone, False))
        assert not hit  # re-derived, not smuggled through the pickle

        plans = ThreadedProgram(clone, full=False)
        ctx = RunContext(
            values=clone.initial_values(),
            memory_arrays=clone.initial_memory_arrays(),
            cycle_box=[0],
            io=QueueIO(),
        )
        ops = plans.bind(ctx)
        for cycle in range(8):
            ctx.cycle_box[0] = cycle
            for op in ops:
                op()
        final = plans.visible_values(ctx.values)
        clone.restore_final_values(final, 8)
        reference = InterpreterBackend().run(spec, cycles=8)
        assert final == reference.final_values

    def test_round_trip_preserves_every_ir_field(self):
        """The process-pool guarantee: a pickled program is the program.

        Every field a backend consumes — slot layout, both variants'
        step lists, observables, pass configuration — survives the trip
        bit-for-bit (steps are frozen dataclasses, compared by value).
        """
        spec = parse_spec(CONSTANT_HEAVY)
        program = lower(spec, specopt=True)
        clone = pickle.loads(pickle.dumps(program))
        assert clone.passes == program.passes
        assert clone.slots == program.slots
        assert clone.latch_base == program.latch_base
        assert clone.value_count == program.value_count
        assert clone.observables == program.observables
        for variant, original in ((clone.fast, program.fast),
                                  (clone.full, program.full)):
            assert variant.steps == original.steps
            assert variant.memory_steps == original.memory_steps
            assert [c.name for c in variant.ordered] == [
                c.name for c in original.ordered
            ]
        # the fast/full aliasing decision survives too
        assert (clone.full is clone.fast) == (program.full is program.fast)

    def test_round_trip_is_bit_identical_on_every_backend(self, counter_spec):
        """A shipped program must drive all three backends to the same
        observables as the original — the process executor's core claim."""
        from repro.compiler.compiled import CompiledBackend
        from repro.compiler.threaded import ThreadedBackend
        from repro.interp.interpreter import InterpreterSimulation

        cache = PrepareCache()
        warm = ThreadedBackend(cache=cache).prepare(counter_spec)
        shipped = pickle.loads(pickle.dumps(warm.program))

        # interpreter: bind the shipped program directly
        direct = InterpreterSimulation(counter_spec, shipped, 0.0)
        reference = InterpreterBackend(specopt=True).run(
            counter_spec, cycles=12
        )
        assert direct.run(cycles=12).final_values == reference.final_values

        # threaded/compiled: seed a fresh cache with the shipped program,
        # exactly as a worker process does
        worker_cache = PrepareCache()
        key = worker_cache.key_for("lowered", counter_spec, warm.program.passes)
        worker_cache.get_or_create(key, lambda: shipped)
        threaded = ThreadedBackend(cache=worker_cache).prepare(counter_spec)
        assert threaded.program is shipped
        compiled = CompiledBackend(
            specopt=warm.program.passes, cache=worker_cache
        ).prepare(counter_spec)
        assert compiled.program is shipped
        expected = warm.run(cycles=12).final_values
        assert threaded.run(cycles=12).final_values == expected
        assert compiled.run(cycles=12).final_values == expected


class TestLowerCached:
    def test_cache_stores_the_program_itself(self, counter_spec):
        cache = PrepareCache(max_entries=4)
        first, hit1 = lower_cached(counter_spec, True, cache)
        second, hit2 = lower_cached(counter_spec, True, cache)
        assert (hit1, hit2) == (False, True)
        assert second is first

    def test_pass_configuration_is_part_of_the_key(self, counter_spec):
        cache = PrepareCache(max_entries=4)
        lower_cached(counter_spec, True, cache)
        _, hit = lower_cached(counter_spec, False, cache)
        assert not hit

    def test_backends_share_one_cached_program(self, counter_spec):
        from repro.compiler.compiled import CompiledBackend
        from repro.compiler.threaded import ThreadedBackend

        cache = PrepareCache(max_entries=4)
        threaded = ThreadedBackend(specopt=False, cache=cache).prepare(
            counter_spec
        )
        compiled = CompiledBackend(specopt=False, cache=cache).prepare(
            counter_spec
        )
        assert compiled.program is threaded.program
        assert len(cache) == 1


class TestCopyPropagationLowering:
    COPY_SPEC = """\
# copy propagated selector
src fwd user r .
A src 4 r 1
S fwd 1 33 src 44
A user 4 fwd 2
M r 0 user 1 1
.
"""

    def test_forwarded_selector_resolves_to_alias(self):
        spec = parse_spec(self.COPY_SPEC)
        program = lower(spec, specopt=True)
        assert program.observables["fwd"] == ("alias", "src")
        assert "fwd" not in program.opt_spec.component_names()

    def test_trace_of_forwarded_name_matches_interpreter(self):
        from repro.compiler.threaded import ThreadedBackend
        from repro.core.trace import TraceOptions

        spec = parse_spec(self.COPY_SPEC)
        options = TraceOptions(trace_cycles=True, names=("fwd", "user"))
        reference = InterpreterBackend().run(spec, cycles=6, trace=options)
        candidate = ThreadedBackend(specopt=True, cache=False).run(
            spec, cycles=6, trace=options
        )
        assert [t.values for t in candidate.trace.cycles] == [
            t.values for t in reference.trace.cycles
        ]
